"""Persistent, content-addressed on-disk CAD artifact store.

:class:`DiskArtifactStore` is the second tier under
:class:`~repro.cad.artifacts.CadArtifactCache`: per-stage CAD artifacts
(synthesis results, placements, routings, implementations — and memoized
:class:`~repro.cad.artifacts.CapacityRejection` markers) are written
through to disk under the *same* per-stage content digests the in-memory
tier uses (:mod:`repro.cad.keys`), so a second **run** — a fresh process,
or a gateway restarted on another day — warms straight from disk instead
of re-synthesizing, just as a second *sweep* warms from memory.

Design points:

* **one file per entry** — ``<stage>-<key>.art`` inside the store root.
  Every file is self-describing: an 8-byte ``WARPDISK`` magic, a 2-byte
  big-endian schema version, then a zlib-compressed pickle of the
  artifact.  A version this build does not understand is rejected
  *loudly* (:class:`DiskStoreSchemaError`), never silently treated as a
  miss: a silent miss would hide that an upgrade quietly threw away a
  multi-gigabyte warm store.
* **atomic writes** — entries are written to a unique temporary name in
  the same directory and published with :func:`os.replace`, so readers
  only ever see complete entries and concurrent writers of the same
  content (which is byte-identical by construction) cannot corrupt each
  other.
* **cross-process safety** — mutating operations (publish + eviction)
  serialize on an ``flock``-ed lockfile, so many worker processes and
  gateways can share one store directory.  On platforms without
  :mod:`fcntl` the lock degrades to a no-op; atomic renames alone keep
  readers safe there.
* **size-bounded LRU by mtime** — reads touch the entry's mtime; when
  the store grows past ``max_bytes`` the oldest-mtime entries are
  evicted until it fits.

Trust model: unlike checkpoint blobs (which refuse all pickled globals),
store entries hold real repo classes and are unpickled normally.  The
store is a *local cache directory* with filesystem permissions, not a
network input — do not point it at untrusted data.  Nothing travels the
wire protocol as a pickle; gateways exchange JSON only.
"""

from __future__ import annotations

import io
import os
import pickle
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import chaos, obs

try:  # POSIX: real cross-process locking.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Magic prefix of every entry file.
STORE_MAGIC = b"WARPDISK"
#: Current entry schema version (bump on any payload layout change and
#: keep a reader for the old one or keep rejecting it loudly).
STORE_SCHEMA_VERSION = 1
_HEADER_BYTES = len(STORE_MAGIC) + 2

#: Default size bound (bytes) before mtime-LRU eviction kicks in.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Orphaned ``*.tmp`` files older than this are garbage-collected when a
#: store opens.  Fresh tmps are left alone: another process may be
#: between its tmp-write and its atomic rename right now.
DEFAULT_TMP_MAX_AGE_S = 3600.0


class DiskStoreError(Exception):
    """Raised when the store directory or an entry cannot be used."""


class DiskStoreSchemaError(DiskStoreError):
    """An entry (or the store marker) has an unsupported schema version."""


class DiskArtifactStore:
    """A size-bounded, content-addressed artifact store in one directory.

    The public surface is the stage-entry protocol
    :class:`~repro.cad.artifacts.CadArtifactCache` consumes —
    :meth:`stage_get` / :meth:`stage_put` — plus accounting.  Keys are the
    per-stage content digests of :mod:`repro.cad.keys`; the store never
    interprets them beyond using them as file names.
    """

    def __init__(self, root, max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
                 quarantine_corrupt: bool = True,
                 tmp_max_age_s: float = DEFAULT_TMP_MAX_AGE_S,
                 peer_fetcher=None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None, unbounded)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        #: Mesh replication seam: a ``(stage, key) -> Optional[bytes]``
        #: callable returning a raw ``WARPDISK`` entry blob from a peer
        #: gateway's store, consulted on a local miss (set by the gateway
        #: when it joins a mesh — see :mod:`repro.server.mesh`).  A
        #: fetched blob goes through exactly the local decode path — same
        #: loud schema check, and a corrupt peer payload is counted and
        #: treated as a miss (there is no local file to quarantine) — and
        #: a good one is published locally, so the next lookup is a plain
        #: disk hit.  Peers share the trust domain of a shared store
        #: directory; the fetcher must only ever talk to configured mesh
        #: members, never arbitrary hosts.
        self.peer_fetcher = peer_fetcher
        #: When set (the default), a corrupt/truncated entry is moved
        #: aside and reported as a miss instead of raising — the caller
        #: recomputes, the flow survives.  Schema-version mismatches are
        #: never quarantined: those are a build/store disagreement and
        #: must stay loud.  Disable to get the raising behaviour back
        #: (the chaos harness does, to prove the faults are real).
        self.quarantine_corrupt = quarantine_corrupt
        self.tmp_max_age_s = tmp_max_age_s
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        #: Corrupt/truncated entries quarantined at read time.
        self.corrupt_entries = 0
        #: Orphaned tmp files removed by the open-time GC.
        self.orphan_tmp_removed = 0
        #: Entries satisfied from a mesh peer on a local miss (counted
        #: separately from ``hits`` end to end: a peer hit is a network
        #: round-trip, not a local file read).
        self.peer_hits = 0
        #: Peer fetches that returned an undecodable blob.
        self.peer_fetch_errors = 0
        #: How the most recent :meth:`stage_get` was satisfied:
        #: ``"disk"``, ``"peer"`` or ``"miss"`` (``None`` before any
        #: lookup).  Read by the cache tier above to attribute the hit.
        self.last_get_source: Optional[str] = None
        #: Running size estimate so a write only pays a full directory
        #: scan when the bound is (approximately) crossed.  Other
        #: processes' writes are invisible to it, but eviction itself
        #: rescans under the lock, so the bound stays authoritative.
        self._approx_bytes: Optional[int] = None
        self.root.mkdir(parents=True, exist_ok=True)
        self._check_marker()
        self._collect_orphan_tmps()

    # ----------------------------------------------------------------- marker
    def _marker_path(self) -> Path:
        return self.root / "WARPDISK.schema"

    def _check_marker(self) -> None:
        """Validate (or create) the store-level schema marker.

        The marker makes a whole-directory version mismatch fail at
        *open* time with one clear message instead of per entry.
        """
        marker = self._marker_path()
        if marker.exists():
            text = marker.read_text().strip()
            if text != str(STORE_SCHEMA_VERSION):
                raise DiskStoreSchemaError(
                    f"artifact store at {self.root} has schema version "
                    f"{text!r} but this build reads version "
                    f"{STORE_SCHEMA_VERSION}; delete the store directory to "
                    f"rebuild it"
                )
            return
        with self._locked():
            if not marker.exists():
                self._publish(marker, str(STORE_SCHEMA_VERSION).encode())

    def _collect_orphan_tmps(self) -> None:
        """Remove stale ``.*.tmp`` files left by writers that died between
        the tmp-write and the atomic rename.  Age-gated: a fresh tmp may
        belong to a live writer in another process."""
        if self.tmp_max_age_s is None:
            return
        cutoff = time.time() - self.tmp_max_age_s
        for tmp in self.root.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime >= cutoff:
                    continue
                tmp.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent GC
                continue
            self.orphan_tmp_removed += 1

    # ------------------------------------------------------------------ paths
    def _entry_path(self, stage: str, key: str) -> Path:
        name = f"{stage}-{key}"
        if os.sep in name or (os.altsep and os.altsep in name):
            raise DiskStoreError(f"invalid entry name {name!r}")
        return self.root / f"{name}.art"

    # ------------------------------------------------------------------- lock
    @contextmanager
    def _locked(self):
        """Serialize mutations across processes via flock (no-op without
        fcntl; atomic renames still keep readers consistent there)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.root / ".lock"
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------ codec
    @staticmethod
    def _encode(value: object) -> bytes:
        body = zlib.compress(pickle.dumps(value, protocol=4), level=6)
        return (STORE_MAGIC
                + STORE_SCHEMA_VERSION.to_bytes(2, "big")
                + body)

    @staticmethod
    def _decode(blob: bytes, label: str) -> object:
        if not blob.startswith(STORE_MAGIC):
            raise DiskStoreError(f"{label}: not an artifact store entry "
                                 f"(bad magic)")
        version = int.from_bytes(
            blob[len(STORE_MAGIC):_HEADER_BYTES], "big")
        if version != STORE_SCHEMA_VERSION:
            raise DiskStoreSchemaError(
                f"{label}: entry schema version {version} is not supported "
                f"(this build reads version {STORE_SCHEMA_VERSION}); delete "
                f"the store directory to rebuild it"
            )
        try:
            return pickle.Unpickler(
                io.BytesIO(zlib.decompress(blob[_HEADER_BYTES:]))).load()
        except Exception as error:
            raise DiskStoreError(f"{label}: corrupt entry payload: "
                                 f"{error}") from error

    def _publish(self, path: Path, blob: bytes) -> None:
        if chaos.ACTIVE_PLAN is not None:
            injection = chaos.fire(chaos.SITE_STORE_PUBLISH, label=path.name)
            if injection is not None:
                if injection.kind == "truncate":
                    blob = injection.mangle(blob)
                elif injection.kind == "orphan":
                    # Model a writer dying between tmp-write and rename:
                    # the tmp is left behind, the entry never appears.
                    orphan = path.with_name(
                        f".{path.name}.{os.getpid()}.tmp")
                    orphan.write_bytes(blob)
                    return
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)

    # ---------------------------------------------------------------- entries
    def stage_get(self, stage: str, key: str) -> Optional[object]:
        """Fetch one stage entry, or ``None`` on a miss.

        A hit refreshes the entry's mtime (the LRU clock).  A truncated,
        zero-length or undecodable entry is **quarantined** (moved to
        ``<name>.quarantine``, counted in ``corrupt_entries``) and
        reported as a miss so the caller recomputes — unless
        ``quarantine_corrupt`` is off, in which case it raises
        :class:`DiskStoreError`.  Unsupported schema versions always
        raise :class:`DiskStoreSchemaError`: the build and the store
        disagree, and recomputing would silently discard a warm store.
        """
        if obs.ACTIVE is None:
            return self._stage_get(stage, key)
        start = time.perf_counter()
        hits_before = self.hits
        peer_before = self.peer_hits
        corrupt_before = self.corrupt_entries
        try:
            return self._stage_get(stage, key)
        finally:
            # Nests under the caller's open span (the CAD stage that
            # missed in memory), joining the job's trace.
            outcome = "hit" if self.hits > hits_before else \
                ("peer" if self.peer_hits > peer_before
                 else ("corrupt" if self.corrupt_entries > corrupt_before
                       else "miss"))
            obs.record_span("store-load",
                            time.perf_counter() - start,
                            stage=stage, outcome=outcome)

    def _stage_get(self, stage: str, key: str) -> Optional[object]:
        path = self._entry_path(stage, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            if self.peer_fetcher is not None:
                value = self._peer_get(stage, key, path)
                if value is not None:
                    return value
            self.misses += 1
            self.last_get_source = "miss"
            return None
        if chaos.ACTIVE_PLAN is not None:
            injection = chaos.fire(chaos.SITE_STORE_LOAD, label=path.name)
            if injection is not None:
                # Corrupt the payload, not the header: header damage is
                # bit-rot too, but a flipped schema byte would look like
                # a version mismatch, which is a different (loud) path.
                if len(blob) > _HEADER_BYTES:
                    blob = (blob[:_HEADER_BYTES]
                            + injection.mangle(blob[_HEADER_BYTES:]))
                else:
                    blob = injection.mangle(blob)
        try:
            value = self._decode(blob, str(path))
        except DiskStoreSchemaError:
            raise
        except DiskStoreError:
            if not self.quarantine_corrupt:
                raise
            self._quarantine(path)
            self.corrupt_entries += 1
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted under our feet
            pass
        self.hits += 1
        self.last_get_source = "disk"
        return value

    def _peer_get(self, stage: str, key: str, path: Path) -> Optional[object]:
        """Try the mesh on a local miss: fetch the raw entry blob from a
        peer, decode it through the normal (loud) entry codec, and
        publish it locally so subsequent lookups are plain disk hits.
        Any peer failure degrades to a miss — the caller recomputes.
        """
        try:
            blob = self.peer_fetcher(stage, key)
        except Exception:
            # The mesh layer already classifies and counts its own
            # failures (chaos resets, dead members); anything escaping
            # to here still must not take down a CAD stage.
            self.peer_fetch_errors += 1
            return None
        if blob is None:
            return None
        try:
            value = self._decode(blob, f"peer:{stage}-{key}")
        except DiskStoreSchemaError:
            raise          # build/store disagreement stays loud, as local.
        except DiskStoreError:
            # A corrupt peer payload: nothing local to quarantine, just
            # count it and recompute.
            self.peer_fetch_errors += 1
            return None
        self._store_blob(path, blob)
        self.peer_hits += 1
        self.last_get_source = "peer"
        return value

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``<name>.quarantine``) so the next
        lookup recomputes instead of re-tripping on it, while the bad
        bytes stay on disk for a post-mortem."""
        try:
            os.replace(path, path.with_name(path.name + ".quarantine"))
        except FileNotFoundError:  # pragma: no cover - evicted meanwhile
            pass

    def stage_put(self, stage: str, key: str, value: object) -> None:
        """Publish one stage entry atomically, then enforce the size bound
        (the full-directory eviction scan runs only when the running size
        estimate crosses ``max_bytes``, not on every write)."""
        if obs.ACTIVE is None:
            return self._stage_put(stage, key, value)
        start = time.perf_counter()
        try:
            return self._stage_put(stage, key, value)
        finally:
            obs.record_span("store-publish",
                            time.perf_counter() - start, stage=stage)

    def _stage_put(self, stage: str, key: str, value: object) -> None:
        self._store_blob(self._entry_path(stage, key), self._encode(value))

    def _store_blob(self, path: Path, blob: bytes) -> None:
        """Publish an already-encoded entry blob under the size bound
        (shared by local writes and peer replication)."""
        with self._locked():
            self._publish(path, blob)
            self.writes += 1
            if self.max_bytes is None:
                return
            if self._approx_bytes is None:
                self._approx_bytes = self.size_bytes()
            else:
                self._approx_bytes += len(blob)
            if self._approx_bytes > self.max_bytes:
                self._approx_bytes = self._evict_locked()

    def entry_blob(self, stage: str, key: str) -> Optional[bytes]:
        """The raw encoded bytes of one entry, or ``None`` — what a mesh
        peer serves over ``mesh-fetch``.  Entries are immutable and
        content-addressed, so the bytes are safe to hand out verbatim;
        the requesting store re-validates them through its own decode
        path.  Does not touch hit/miss accounting (the *requester* is
        the one doing a lookup) but refreshes the LRU clock: a replica
        another member still wants is worth keeping."""
        path = self._entry_path(stage, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted under our feet
            pass
        return blob

    # --------------------------------------------------------------- eviction
    def _entries(self) -> List[Tuple[Path, int, float]]:
        entries = []
        for path in self.root.glob("*.art"):
            try:
                status = path.stat()
            except FileNotFoundError:  # pragma: no cover - concurrent evict
                continue
            entries.append((path, status.st_size, status.st_mtime))
        return entries

    def _evict_locked(self) -> int:
        """Evict oldest-mtime entries until the store fits; returns the
        store's measured size afterwards."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if self.max_bytes is None or total <= self.max_bytes:
            return total
        # Oldest mtime first; ties broken by name for determinism.
        for path, size, _ in sorted(entries,
                                    key=lambda item: (item[2], item[0].name)):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent evict
                continue
            total -= size
            self.evictions += 1
        return total

    def clear(self) -> None:
        """Drop every entry (the schema marker stays) and reset counters."""
        with self._locked():
            for path, _, _ in self._entries():
                try:
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.corrupt_entries = 0
        self.orphan_tmp_removed = 0
        self.peer_hits = 0
        self.peer_fetch_errors = 0
        self.last_get_source = None
        self._approx_bytes = None

    # -------------------------------------------------------------- accounting
    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def stats(self) -> Dict:
        entries = self._entries()        # one directory scan for both
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "entries": len(entries),
            "size_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "orphan_tmp_removed": self.orphan_tmp_removed,
            "peer_hits": self.peer_hits,
            "peer_fetch_errors": self.peer_fetch_errors,
        }
