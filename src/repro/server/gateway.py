"""The asyncio warp gateway: a networked front end for the warp service.

A :class:`WarpGateway` binds one listening socket and fronts one
:class:`~repro.service.pool.WarpService` (serial or pooled) with the
``WARPNET`` protocol of :mod:`repro.server.protocol`:

* **submission** — a ``submit`` verb carries a batch of wire-encoded
  jobs.  The batch is scheduled/deduplicated/executed by the service
  exactly as an in-process ``service.run(jobs)`` would be, so a remote
  submission produces byte-identical :class:`ServiceResult` numbers.
* **admission control / backpressure** — the gateway admits at most
  ``queue_limit`` *jobs* (summed over queued and running batches).  A
  submission that would exceed the limit is rejected immediately with a
  429-style ``busy`` reply — the client raises the typed
  :class:`~repro.server.protocol.GatewayBusyError` — instead of queueing
  unboundedly or hanging the connection.
* **execution** — admitted batches run on a bounded pool of executor
  threads (``max_concurrent_batches``), all sharing the one service:
  the serial path's caches are thread-safe, and a pooled service's
  content-affinity shards serialize per-shard inside
  ``ProcessPoolExecutor``.  Runner tasks pick the pending batch with the
  highest *aged* priority (:func:`repro.service.scheduler.aged_priority`
  over the batch's best job priority), so sustained high-priority
  traffic delays low-priority batches but can never starve them.
* **quotas** — beyond the global ``queue_limit``, an optional
  ``client_quota`` caps the pending jobs attributed to one client id
  (the additive ``"client"`` submit key); an over-quota submission gets
  the same typed 429-style ``busy`` reply, extended with the client's
  own occupancy.
* **persistence** — with a ``store_path`` the gateway's CAD cache is
  backed by a :class:`~repro.server.store.DiskArtifactStore`, so a
  restarted gateway (or a second one sharing the directory) starts warm.
* **mesh** — gateways form a :class:`~repro.server.mesh.GatewayMesh`
  (``peers=`` / ``--peer``): membership travels over the additive
  ``mesh-join``/``mesh-peers`` verbs, warm store entries replicate on
  demand over ``mesh-fetch``, and a ``route="ring"`` submission that
  lands on a non-owner is forwarded to the consistent-hash ring owner
  (falling back to local execution if the owner cannot take it).

The gateway is deliberately loop-per-thread: ``run()`` owns its own
``asyncio`` event loop, so tests and the CLI can host a gateway on a
background thread next to blocking client code.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from .. import chaos, obs
from ..service.jobs import JobSpecError, ServiceReport, WarpJob
from ..service.pool import WarpService, configure_process_store
from ..service.scheduler import DEFAULT_AGING_INTERVAL_S, aged_priority
from . import protocol
from .client import _drop_pooled_client, _pooled_client, parse_address
from .mesh import GatewayMesh

#: Default number of jobs the admission queue accepts (queued + running).
DEFAULT_QUEUE_LIMIT = 64

#: Completed batches retained for status/stream-results queries; beyond
#: this the oldest finished batches are dropped (a long-running gateway
#: must not grow without bound).
DEFAULT_RETAINED_BATCHES = 256

#: How long a ring-forwarded submission waits for the owner's report.
FORWARD_TIMEOUT = 600.0

#: Default number of batches executing concurrently.  Small on purpose:
#: each executing batch fans out over the same worker pool (or the
#: serial path's single thread of CPU), so this bounds *overlap* — a
#: short batch no longer waits behind a long one — not total parallelism.
DEFAULT_MAX_CONCURRENT_BATCHES = 4


class _Batch:
    """One submitted batch: its jobs, state and (eventually) report."""

    __slots__ = ("batch_id", "sequence", "jobs", "num_jobs", "state",
                 "report", "error", "done", "enqueued_monotonic",
                 "priority", "client")

    def __init__(self, batch_id: str, sequence: int, jobs: List[WarpJob],
                 client: Optional[str] = None):
        self.batch_id = batch_id
        self.sequence = sequence
        self.jobs = jobs                 # dropped once the batch finishes
        self.num_jobs = len(jobs)
        self.state = "queued"            # queued -> running -> done/failed
        self.report: Optional[ServiceReport] = None
        self.error: Optional[str] = None
        self.done = asyncio.Event()
        #: When the batch was admitted (the queue-age gauge's clock and
        #: the aging clock of the priority scheduler).
        self.enqueued_monotonic = time.monotonic()
        #: The batch competes at its best job's priority; aging lifts it
        #: from there while it waits.
        self.priority = max((job.priority for job in jobs), default=0)
        #: Client id for per-client quota accounting (``None`` = anonymous).
        self.client = client


class WarpGateway:
    """One listening endpoint fronting one warp service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0, policy: str = "priority",
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 retained_batches: int = DEFAULT_RETAINED_BATCHES,
                 store_path=None,
                 service: Optional[WarpService] = None,
                 telemetry: bool = True,
                 max_concurrent_batches: int = DEFAULT_MAX_CONCURRENT_BATCHES,
                 client_quota: Optional[int] = None,
                 aging_interval_s: Optional[float] = DEFAULT_AGING_INTERVAL_S,
                 peers: Optional[Sequence[str]] = None):
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if retained_batches <= 0:
            raise ValueError("retained_batches must be positive")
        if max_concurrent_batches <= 0:
            raise ValueError("max_concurrent_batches must be positive")
        if client_quota is not None and client_quota <= 0:
            raise ValueError("client_quota must be positive (or None)")
        self.host = host
        self.port = port                 # rebound to the real port on start
        self.queue_limit = queue_limit
        self.retained_batches = retained_batches
        self.store_path = store_path
        self.max_concurrent_batches = max_concurrent_batches
        #: Per-client pending-job cap (``None`` = only the global limit).
        self.client_quota = client_quota
        #: Aging cadence of the batch queue's priority scheduler
        #: (``None`` disables aging — classic strict priority).
        self.aging_interval_s = aging_interval_s
        #: Mesh peer seed addresses joined at startup (``--peer``).
        self._peer_seeds = [str(peer) for peer in (peers or ())]
        #: The live mesh view; built in :meth:`start` once the real port
        #: is known (a ``port=0`` gateway has no address before binding).
        self.mesh: Optional[GatewayMesh] = None
        #: Telemetry plane: a gateway is observable out of the box — it
        #: installs a process-wide spooled telemetry (the spool reaches
        #: pool workers through the environment) unless the process
        #: already has one (then it joins it and never tears it down) or
        #: ``telemetry=False``.  The ``metrics`` verb serves it live.
        self._owns_telemetry = False
        self._telemetry_spool: Optional[str] = None
        if telemetry and obs.ACTIVE is None:
            self._telemetry_spool = tempfile.mkdtemp(prefix="warp-obs-")
            obs.export_to_environment(
                obs.install(spool_dir=self._telemetry_spool))
            self._owns_telemetry = True
        if service is not None:
            self.service = service
        else:
            artifact_cache = None
            if store_path is not None:
                # Also exported via the environment so pool workers the
                # service forks later inherit the same store directory.
                artifact_cache = configure_process_store(store_path)
            self.service = WarpService(workers=workers, policy=policy,
                                       artifact_cache=artifact_cache)
        self._batches: Dict[str, _Batch] = {}
        self._connections: set = set()
        #: Graceful-drain state: set by the ``shutdown`` verb.  A
        #: draining gateway finishes the batches already admitted but
        #: rejects new submissions with the typed ``draining`` reply,
        #: and stops once the queue is empty.
        self._draining = False
        #: Batches admitted and not yet picked by a runner, ordered by
        #: aged priority at pick time (not submit time — that is the
        #: whole point of aging).  Lives on the event loop: only
        #: coroutines touch it, guarded by ``_pending_cond``.
        self._pending: List[_Batch] = []
        self._pending_cond: Optional[asyncio.Condition] = None
        self._pending_jobs = 0
        #: client id -> pending jobs, for ``client_quota`` admission.
        self._pending_by_client: Dict[str, int] = {}
        self._quota_rejections = 0
        self._ids = itertools.count(1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._runner_tasks: List = []
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent_batches,
            thread_name_prefix="warp-batch")

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind the socket, build the mesh view, start the batch runner
        pool (idempotent)."""
        if self._server is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._pending_cond = asyncio.Condition()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection,
                                                  host=self.host,
                                                  port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.mesh = GatewayMesh(self.address)
        disk = getattr(self.service.artifact_cache, "disk_store", None)
        if disk is not None:
            # Local misses consult the mesh before recomputing.  Wired
            # at the gateway-process level: pooled workers keep their
            # own local store tier (documented limitation — the entry
            # still replicates when the gateway's serial path, or a
            # peer, touches it).
            disk.peer_fetcher = self.mesh.fetch_blob
        for peer in self._peer_seeds:
            # Blocking socket I/O off the loop; a dead seed peer fails
            # the startup loudly rather than leaving us silently meshless.
            await self._loop.run_in_executor(None, self.mesh.join_via, peer)
        self._runner_tasks = [
            asyncio.ensure_future(self._run_batches())
            for _ in range(self.max_concurrent_batches)]
        self._ready.set()

    async def serve(self) -> None:
        """Start, then serve until a ``shutdown`` verb (or request_stop)."""
        await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            # Close open connections explicitly: handlers parked on a
            # read of an idle keep-alive connection would otherwise keep
            # Server.wait_closed() (which awaits handler completion on
            # Python >= 3.12) blocked forever.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
        for task in self._runner_tasks:
            task.cancel()
        for task in self._runner_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._runner_tasks = []
        self._executor.shutdown(wait=True)
        self.service.close()
        if self._owns_telemetry:
            obs.clear()
            obs.clear_environment()
            self._owns_telemetry = False
            if self._telemetry_spool is not None:
                shutil.rmtree(self._telemetry_spool, ignore_errors=True)
                self._telemetry_spool = None

    def run(self) -> None:
        """Blocking entry point: own loop, serve until shutdown."""
        asyncio.run(self.serve())

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until the socket is bound (gateway-on-a-thread helper)."""
        return self._ready.wait(timeout)

    def request_stop(self) -> None:
        """Thread-safe external shutdown request."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------- batches
    def _effective_priority(self, batch: _Batch, now: float) -> int:
        return aged_priority(batch.priority,
                             now - batch.enqueued_monotonic,
                             self.aging_interval_s)

    async def _next_batch(self) -> _Batch:
        """Wait for a pending batch and claim the best one: highest aged
        priority first, admission order within a level."""
        async with self._pending_cond:
            while not self._pending:
                await self._pending_cond.wait()
            now = time.monotonic()
            self._pending.sort(
                key=lambda b: (-self._effective_priority(b, now),
                               b.sequence))
            batch = self._pending.pop(0)
        boost = self._effective_priority(batch, now) - batch.priority
        if obs.ACTIVE is not None:
            obs.set_gauge("warp_batch_priority_boost", float(boost),
                          "Aging boost (priority levels) of the most "
                          "recently scheduled batch")
            if boost > 0:
                obs.inc("warp_batch_aged_total",
                        help_text="Batches scheduled above their "
                                  "submitted priority by aging")
        return batch

    async def _run_batches(self) -> None:
        """One batch runner; ``max_concurrent_batches`` of these share
        the executor thread pool (and the one service under it)."""
        while True:
            batch = await self._next_batch()
            batch.state = "running"
            try:
                batch.report = await asyncio.get_running_loop() \
                    .run_in_executor(self._executor, self.service.run,
                                     batch.jobs)
                batch.state = "done"
            except Exception as error:  # noqa: BLE001 - kept per batch
                batch.state = "failed"
                batch.error = f"{type(error).__name__}: {error}"
            finally:
                self._pending_jobs -= batch.num_jobs
                if batch.client is not None:
                    remaining = self._pending_by_client.get(batch.client, 0) \
                        - batch.num_jobs
                    if remaining > 0:
                        self._pending_by_client[batch.client] = remaining
                    else:
                        self._pending_by_client.pop(batch.client, None)
                batch.jobs = []          # results live in the report now
                batch.done.set()
                self._set_queue_gauges()
                self._prune_finished()
                if self._draining and self._pending_jobs == 0:
                    # Drain complete.  The grace sleep lets submit
                    # handlers woken by ``batch.done`` flush their reply
                    # frames before teardown closes the connections.
                    await asyncio.sleep(0.05)
                    self._stop_event.set()

    def _prune_finished(self) -> None:
        """Drop the oldest finished batches beyond the retention bound
        (in-flight batches are never dropped; insertion order is batch
        order, so a plain scan evicts oldest-first)."""
        finished = [batch_id for batch_id, batch in self._batches.items()
                    if batch.state in ("done", "failed")]
        for batch_id in finished[:max(0, len(finished)
                                      - self.retained_batches)]:
            del self._batches[batch_id]

    def _admit(self, jobs: List[WarpJob],
               client: Optional[str] = None) -> Optional[Dict]:
        """Admission control: an error reply when the queue cannot take
        the batch, ``None`` when admitted.

        A batch that could *never* fit gets the distinct, non-retryable
        ``batch-too-large`` error; the 429-style ``busy`` reply is
        reserved for transient fullness, where backing off and retrying
        can succeed — it carries ``queue_depth``/``queue_limit`` so
        clients back off proportionally to how loaded we actually are.
        With a ``client_quota`` configured, a submission carrying a
        ``client`` id is additionally held to that client's own pending
        cap (the ``busy`` reply then also carries ``client_pending`` /
        ``client_quota``).  A draining gateway rejects every submission
        with the typed, equally non-retryable ``draining`` reply.
        """
        if self._draining:
            return {
                "ok": False,
                "error": "draining",
                "message": ("gateway is draining: finishing "
                            f"{self._pending_jobs} admitted jobs, "
                            "accepting no new submissions"),
                "pending_jobs": self._pending_jobs,
                "queue_depth": self._pending_jobs,
                "queue_limit": self.queue_limit,
            }
        limit = self.queue_limit
        if self.client_quota is not None and client is not None:
            limit = min(limit, self.client_quota)
        if len(jobs) > limit:
            return {
                "ok": False,
                "error": "batch-too-large",
                "message": (f"batch of {len(jobs)} jobs exceeds this "
                            f"gateway's admission limit of "
                            f"{limit}; split the batch (no "
                            f"amount of retrying can admit it whole)"),
                "queue_limit": self.queue_limit,
            }
        if self._pending_jobs + len(jobs) > self.queue_limit:
            return {
                "ok": False,
                "error": "busy",
                "code": 429,
                "message": (f"admission queue is full: {self._pending_jobs} "
                            f"jobs pending, limit {self.queue_limit}, "
                            f"batch of {len(jobs)} rejected"),
                "pending_jobs": self._pending_jobs,
                "queue_depth": self._pending_jobs,
                "queue_limit": self.queue_limit,
            }
        if self.client_quota is not None and client is not None:
            client_pending = self._pending_by_client.get(client, 0)
            if client_pending + len(jobs) > self.client_quota:
                self._quota_rejections += 1
                if obs.ACTIVE is not None:
                    obs.inc("warp_quota_rejections_total", client=client,
                            help_text="Submissions rejected by the "
                                      "per-client quota")
                return {
                    "ok": False,
                    "error": "busy",
                    "code": 429,
                    "message": (f"client {client!r} is over quota: "
                                f"{client_pending} jobs pending, quota "
                                f"{self.client_quota}, batch of "
                                f"{len(jobs)} rejected"),
                    "pending_jobs": self._pending_jobs,
                    "queue_depth": self._pending_jobs,
                    "queue_limit": self.queue_limit,
                    "client": client,
                    "client_pending": client_pending,
                    "client_quota": self.client_quota,
                }
        return None

    async def _enqueue(self, jobs: List[WarpJob],
                       client: Optional[str] = None) -> _Batch:
        sequence = next(self._ids)
        batch = _Batch(f"batch-{sequence}", sequence, jobs, client=client)
        self._batches[batch.batch_id] = batch
        self._pending_jobs += len(jobs)
        if client is not None:
            self._pending_by_client[client] = \
                self._pending_by_client.get(client, 0) + len(jobs)
        async with self._pending_cond:
            self._pending.append(batch)
            self._pending_cond.notify()
        self._set_queue_gauges()
        return batch

    def _set_queue_gauges(self) -> None:
        """Publish the admission queue's live state as gauge families
        (queue depth, limit, per-client occupancy and the age of the
        oldest pending batch)."""
        if obs.ACTIVE is None:
            return
        obs.set_gauge("warp_queue_depth", self._pending_jobs,
                      "Jobs admitted and not yet finished")
        obs.set_gauge("warp_queue_limit", self.queue_limit,
                      "Admission limit (queued + running jobs)")
        for client, pending in self._pending_by_client.items():
            obs.set_gauge("warp_client_pending_jobs", float(pending),
                          "Pending jobs by submitting client",
                          client=client)
        pending = [batch.enqueued_monotonic
                   for batch in self._batches.values()
                   if batch.state in ("queued", "running")]
        age = (time.monotonic() - min(pending)) if pending else 0.0
        obs.set_gauge("warp_queue_oldest_age_seconds", age,
                      "Age of the oldest unfinished batch")

    def _batch_reply(self, batch: _Batch) -> Dict:
        reply = {"ok": True, "batch_id": batch.batch_id,
                 "state": batch.state, "num_jobs": batch.num_jobs,
                 "queue_depth": self._pending_jobs,
                 "queue_limit": self.queue_limit}
        if batch.state == "done":
            reply["report"] = batch.report.to_plain()
        elif batch.state == "failed":
            reply["ok"] = False
            reply["error"] = "batch-failed"
            reply["message"] = batch.error
        return reply

    # --------------------------------------------------------------- connection
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            await self._converse(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels handlers blocked on a read; finishing
            # quietly here keeps shutdown free of spurious tracebacks.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _converse(self, reader, writer) -> None:
        try:
            hello = await protocol.read_frame(reader)
            try:
                protocol.check_hello(hello)
            except protocol.HandshakeError as error:
                await protocol.write_frame(writer, {
                    "magic": protocol.PROTOCOL_MAGIC,
                    "version": protocol.PROTOCOL_VERSION,
                    "ok": False, "error": "version-mismatch",
                    "message": str(error),
                })
                return
            await protocol.write_frame(writer, {
                "magic": protocol.PROTOCOL_MAGIC,
                "version": protocol.PROTOCOL_VERSION,
                "ok": True,
            })
            while True:
                request = await protocol.read_frame(reader)
                if request is None:
                    return
                stop_after = await self._dispatch(request, writer)
                if stop_after:
                    return
        except (protocol.ProtocolError, ConnectionError):
            pass  # a broken peer never takes the gateway down

    async def _dispatch(self, request: Dict, writer) -> bool:
        """Handle one verb; returns True when the connection should end."""
        verb = request.get("verb")
        if obs.ACTIVE is not None:
            obs.inc("warp_gateway_requests_total", verb=str(verb))
            start = time.perf_counter()
            try:
                return await self._dispatch_verb(verb, request, writer)
            finally:
                # A request span per verb; ``submit`` spans cover the
                # whole wait for the batch report, by design.
                obs.record_span(f"gateway:{verb}",
                                time.perf_counter() - start)
        return await self._dispatch_verb(verb, request, writer)

    async def _dispatch_verb(self, verb, request: Dict, writer) -> bool:
        if verb == "submit":
            await self._verb_submit(request, writer)
        elif verb == "status":
            await self._verb_status(request, writer)
        elif verb == "stream-results":
            await self._verb_stream(request, writer)
        elif verb == "cache-stats":
            await self._verb_cache_stats(writer)
        elif verb == "metrics":
            await self._verb_metrics(request, writer)
        elif verb == "mesh-join":
            await self._verb_mesh_join(request, writer)
        elif verb == "mesh-peers":
            await protocol.write_frame(writer,
                                       {"ok": True, **self.mesh.members()})
        elif verb == "mesh-fetch":
            await self._verb_mesh_fetch(request, writer)
        elif verb == "shutdown":
            # Graceful drain: admitted batches finish (their submitters
            # get real reports), new submissions are rejected with the
            # typed ``draining`` reply, and the gateway stops once the
            # queue is empty — immediately when it already is.
            self._draining = True
            await protocol.write_frame(writer, {
                "ok": True,
                "state": "draining" if self._pending_jobs else "stopping",
                "pending_jobs": self._pending_jobs,
            })
            if self._pending_jobs == 0:
                self._stop_event.set()
            return True
        else:
            await protocol.write_frame(writer, {
                "ok": False, "error": "unknown-verb",
                "message": f"unknown verb {verb!r}",
            })
        return False

    async def _verb_submit(self, request: Dict, writer) -> None:
        try:
            jobs = protocol.jobs_from_plain(request.get("jobs"))
        except JobSpecError as error:
            await protocol.write_frame(writer, {
                "ok": False, "error": "bad-jobs", "message": str(error),
            })
            return
        client = request.get("client")
        forwarded_reply = await self._maybe_forward(request, jobs)
        if forwarded_reply is not None:
            await protocol.write_frame(writer, forwarded_reply)
            return
        busy = self._admit(jobs, client=client)
        if busy is not None:
            await protocol.write_frame(writer, busy)
            return
        batch = await self._enqueue(jobs, client=client)
        if not request.get("wait", True):
            await protocol.write_frame(writer, {
                "ok": True, "batch_id": batch.batch_id,
                "state": batch.state, "num_jobs": batch.num_jobs,
            })
            return
        await batch.done.wait()
        await protocol.write_frame(writer, self._batch_reply(batch))

    async def _maybe_forward(self, request: Dict,
                             jobs: List[WarpJob]) -> Optional[Dict]:
        """Ring-aware forwarding: a single-job ``route="ring"`` batch
        that this gateway does not own under its (authoritative) ring is
        relayed to the ring owner — the stale-ring fallback that keeps a
        client with an old membership view hitting warm caches.

        The ``forwarded`` hop guard caps the relay at one hop: the
        owner executes even if *its* ring disagrees, so two gateways
        with momentarily divergent views can never forward in a loop.
        Returns the owner's reply (tagged ``forwarded_to``), or ``None``
        to execute locally — also the fallback when the owner cannot be
        reached or cannot take the batch.
        """
        if (request.get("route") != "ring" or request.get("forwarded")
                or self._draining or len(jobs) != 1
                or self.mesh is None or len(self.mesh.ring) <= 1):
            return None
        owner = self.mesh.ring.node_for(repr(jobs[0].dedup_key()))
        if owner is None or owner == self.mesh.self_address:
            return None
        reply = await asyncio.get_running_loop().run_in_executor(
            None, self._forward_submit, owner, request)
        if obs.ACTIVE is not None:
            obs.inc("warp_mesh_forwards_total",
                    result="relayed" if reply is not None else "local",
                    help_text="Ring-routed submissions forwarded to the "
                              "ring owner, by outcome")
        return reply

    def _forward_submit(self, owner: str, request: Dict) -> Optional[Dict]:
        """Blocking side of the relay (runs off the event loop)."""
        address = parse_address(owner)
        forwarded = dict(request)
        forwarded["forwarded"] = True
        try:
            if chaos.ACTIVE_PLAN is not None:
                chaos.fire(chaos.SITE_MESH_MEMBER, label=owner)
            with _pooled_client(address, FORWARD_TIMEOUT) as forward_client:
                reply = forward_client._round_trip(forwarded)
        except (protocol.GatewayBusyError, protocol.GatewayDrainingError,
                protocol.RemoteError):
            return None          # owner is alive but can't take it: run local
        except ConnectionResetError:
            # Injected (or real) member failure mid-conversation.
            _drop_pooled_client(address)
            self.mesh.drop_member(owner)
            return None
        except (protocol.ProtocolError, TimeoutError, ConnectionError,
                OSError, EOFError):
            _drop_pooled_client(address)
            self.mesh.drop_member(owner)
            return None
        reply = dict(reply)
        reply["forwarded_to"] = owner
        return reply

    async def _verb_mesh_join(self, request: Dict, writer) -> None:
        address = request.get("address")
        if not address:
            await protocol.write_frame(writer, {
                "ok": False, "error": "bad-address",
                "message": "mesh-join needs an 'address' of host:port",
            })
            return
        try:
            view = self.mesh.handle_join(str(address))
        except ValueError as error:
            await protocol.write_frame(writer, {
                "ok": False, "error": "bad-address", "message": str(error),
            })
            return
        await protocol.write_frame(writer, {"ok": True, **view})

    async def _verb_mesh_fetch(self, request: Dict, writer) -> None:
        """Serve one raw store entry blob to a mesh peer (base64 in the
        JSON frame; ``blob: null`` when we don't hold it).  Entries are
        immutable and content-addressed, so no locking is needed beyond
        the store's own atomic publishes."""
        stage, key = request.get("stage"), request.get("key")
        if not stage or not key:
            await protocol.write_frame(writer, {
                "ok": False, "error": "bad-request",
                "message": "mesh-fetch needs 'stage' and 'key'",
            })
            return
        disk = getattr(self.service.artifact_cache, "disk_store", None)
        blob = None
        if disk is not None:
            try:
                blob = disk.entry_blob(str(stage), str(key))
            except Exception:  # noqa: BLE001 - peer fetch must not wedge us
                blob = None
        await protocol.write_frame(writer, {
            "ok": True, "stage": stage, "key": key,
            "blob": base64.b64encode(blob).decode("ascii")
            if blob is not None else None,
        })

    def _lookup(self, request: Dict) -> Optional[_Batch]:
        return self._batches.get(request.get("batch_id"))

    async def _verb_status(self, request: Dict, writer) -> None:
        batch = self._lookup(request)
        if batch is None:
            await protocol.write_frame(writer, {
                "ok": False, "error": "unknown-batch",
                "message": f"no batch {request.get('batch_id')!r}",
            })
            return
        reply = self._batch_reply(batch)
        # Additive key (decoders use .get(): no version bump) — lets a
        # ring-aware client refresh its membership from any reply.
        if self.mesh is not None:
            reply["mesh"] = self.mesh.members()
        await protocol.write_frame(writer, reply)

    async def _verb_stream(self, request: Dict, writer) -> None:
        """Stream a batch's results one frame at a time, then ``done``.

        Results stream as soon as the batch completes; each frame carries
        one :class:`ServiceResult`, so a large report never has to fit in
        a single frame on constrained clients.
        """
        batch = self._lookup(request)
        if batch is None:
            await protocol.write_frame(writer, {
                "ok": False, "error": "unknown-batch",
                "message": f"no batch {request.get('batch_id')!r}",
            })
            return
        await batch.done.wait()
        if batch.state == "failed":
            await protocol.write_frame(writer, self._batch_reply(batch))
            return
        await protocol.write_frame(writer, {
            "ok": True, "streaming": True, "batch_id": batch.batch_id,
            "num_results": len(batch.report.results),
        })
        for result in batch.report.results:
            await protocol.write_frame(writer, {
                "ok": True, "result": result.to_plain(),
            })
        await protocol.write_frame(writer, {
            "ok": True, "done": True,
            "wall_seconds": batch.report.wall_seconds,
            "mode": batch.report.mode,
            "workers": batch.report.workers,
        })

    async def _verb_metrics(self, request: Dict, writer) -> None:
        """The live telemetry snapshot: aggregated metric families (this
        process merged with the worker spool) plus the trace spans
        recorded since the request's ``since`` cursor.

        Additive reply keys on an additive verb — decoders use ``.get()``,
        so per protocol.py's documented discipline this is NOT a protocol
        version bump.  ``"spans": false`` skips span payloads for pure
        metric scrapers; the returned ``cursor`` feeds the next poll's
        ``since`` so a poller never re-reads spans it has seen.
        """
        reply = {
            "ok": True,
            "enabled": obs.ACTIVE is not None,
            "metrics": {},
            "spans": [],
            "cursor": 0,
            "queue_depth": self._pending_jobs,
            "queue_limit": self.queue_limit,
            "client_quota": self.client_quota,
            "quota_rejections": self._quota_rejections,
            "max_concurrent_batches": self.max_concurrent_batches,
            "draining": self._draining,
            "mode": self.service.mode,
            "workers": self.service.workers,
            "mesh": self.mesh.members() if self.mesh is not None else None,
        }
        telemetry = obs.ACTIVE
        if telemetry is not None:
            self._set_queue_gauges()
            # collect() also drains spooled worker spans into the sink,
            # so it must run before the cursor read below.
            reply["metrics"] = telemetry.collect()
            try:
                since = int(request.get("since", 0) or 0)
            except (TypeError, ValueError):
                since = 0
            if request.get("spans", True):
                cursor, spans = telemetry.spans.since(since)
                reply["cursor"] = cursor
                reply["spans"] = [span.to_plain() for span in spans]
            else:
                reply["cursor"] = telemetry.spans.cursor
        await protocol.write_frame(writer, reply)

    async def _verb_cache_stats(self, writer) -> None:
        cache = self.service.artifact_cache
        # The executor thread mutates the cache's counter dicts while a
        # batch runs; iterating them here can race ("dictionary changed
        # size during iteration").  Stats are a monitoring snapshot, so
        # retrying the read is both safe and sufficient.
        for _ in range(10):
            try:
                stats = cache.stats()
                break
            except RuntimeError:
                await asyncio.sleep(0)
        else:
            stats = {"error": "cache busy, stats unavailable"}
        reply = {
            "ok": True,
            "cache": stats,
            "pending_jobs": self._pending_jobs,
            "queue_depth": self._pending_jobs,
            "queue_limit": self.queue_limit,
            "client_quota": self.client_quota,
            "quota_rejections": self._quota_rejections,
            "draining": self._draining,
            "batches": {batch_id: batch.state
                        for batch_id, batch in self._batches.items()},
            "mode": self.service.mode,
            "workers": self.service.workers,
            "mesh": self.mesh.members() if self.mesh is not None else None,
        }
        if self.service.workers >= 1:
            # Pool workers hold their own per-process caches; this
            # process's hit/miss counters see only the serial path.  The
            # store block's entries/size_bytes are still live (they scan
            # the shared directory), so say so instead of letting the
            # zeros read as a cold service.
            reply["cache_scope"] = (
                "gateway process only; pooled workers keep their own "
                "caches (per-job counters travel in each report; the "
                "store's entries/size reflect the shared directory)")
        await protocol.write_frame(writer, reply)


# --------------------------------------------------------------------------- helpers
def start_gateway_thread(gateway: WarpGateway,
                         timeout: float = 30.0) -> threading.Thread:
    """Host ``gateway`` on a daemon thread and block until it is bound.

    The gateway binds an ephemeral port when constructed with ``port=0``;
    after this returns, ``gateway.port`` holds the real port.
    """
    thread = threading.Thread(target=gateway.run, name="warp-gateway",
                              daemon=True)
    thread.start()
    if not gateway.wait_ready(timeout):
        raise RuntimeError("gateway did not come up within "
                           f"{timeout} seconds")
    return thread
