"""The networked warp service: gateway, wire protocol, clients, store.

PR 2 made warp processing a *service object*; this package makes it an
actual **service**: a process you can start, submit jobs to over TCP,
and restart without losing its CAD work.

* :mod:`~repro.server.protocol` — the versioned ``WARPNET`` wire
  protocol: length-prefixed JSON frames, handshake, verb/error shapes,
  and the job/config/WCLA codecs that keep content-addressed CAD keys
  stable across machines.  JSON only — nothing off a socket ever reaches
  a deserializer that can execute code.
* :mod:`~repro.server.gateway` — :class:`WarpGateway`, the asyncio
  server fronting a :class:`~repro.service.pool.WarpService` with
  admission control and 429-style backpressure.
* :mod:`~repro.server.client` — :class:`GatewayClient` (blocking),
  :class:`AsyncGatewayClient` (asyncio) and
  :class:`RemoteWorkerBackend`, the ``worker_fn`` backend that lets a
  local service fan jobs out to remote gateways with stable content
  affinity.
* :mod:`~repro.server.mesh` — the consistent-hash gateway mesh:
  :class:`HashRing` (virtual-node ring; a membership change reshuffles
  only ~1/N of keys), :class:`GatewayMesh` (membership over additive
  ``mesh-*`` verbs plus on-demand warm-store replication) and
  :class:`MeshBackend` (ring-aware remote worker backend with
  forwarding-friendly ``route="ring"`` submissions).
* :mod:`~repro.server.store` — :class:`DiskArtifactStore`, the
  persistent content-addressed artifact tier under
  :class:`~repro.cad.CadArtifactCache`: atomic one-file-per-entry
  writes, ``flock`` cross-process safety, mtime-LRU size bounding, and
  loud schema versioning.

CLI front ends: ``repro-warp serve`` / ``submit`` / ``remote-suite``
(:mod:`repro.service.cli`).
"""

from .client import (
    AsyncGatewayClient,
    GatewayClient,
    RemoteWorkerBackend,
    close_pooled_clients,
    parse_address,
)
from .gateway import DEFAULT_QUEUE_LIMIT, WarpGateway, start_gateway_thread
from .mesh import GatewayMesh, HashRing, MeshBackend
from .protocol import (
    GatewayBusyError,
    GatewayDrainingError,
    HandshakeError,
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
)
from .store import (
    DEFAULT_MAX_BYTES,
    DiskArtifactStore,
    DiskStoreError,
    DiskStoreSchemaError,
    STORE_MAGIC,
    STORE_SCHEMA_VERSION,
)

__all__ = [
    "AsyncGatewayClient",
    "GatewayClient",
    "RemoteWorkerBackend",
    "close_pooled_clients",
    "parse_address",
    "DEFAULT_QUEUE_LIMIT",
    "WarpGateway",
    "start_gateway_thread",
    "GatewayMesh",
    "HashRing",
    "MeshBackend",
    "GatewayBusyError",
    "GatewayDrainingError",
    "HandshakeError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "DEFAULT_MAX_BYTES",
    "DiskArtifactStore",
    "DiskStoreError",
    "DiskStoreSchemaError",
    "STORE_MAGIC",
    "STORE_SCHEMA_VERSION",
]
