"""Clients for the warp gateway, and the remote worker backend.

Three consumers of the ``WARPNET`` protocol live here:

* :class:`GatewayClient` — a blocking socket client: handshake on
  connect, then ``submit`` / ``status`` / ``stream_results`` /
  ``cache_stats`` / ``shutdown`` verbs.  Admission-control rejections
  surface as the typed
  :class:`~repro.server.protocol.GatewayBusyError` (never a hang), and
  reports/results come back as real
  :class:`~repro.service.jobs.ServiceReport` /
  :class:`~repro.service.jobs.ServiceResult` objects.
* :class:`AsyncGatewayClient` — the same verbs on asyncio streams, for
  callers that multiplex many gateways from one event loop.
* :class:`RemoteWorkerBackend` — the remote executor for the
  :class:`~repro.service.pool.WarpService` backend seam: a picklable
  ``worker_fn(WarpJob) -> ServiceResult`` callable that routes each job
  to one of several gateways by the same stable content digest the local
  pool uses for shard affinity
  (:func:`repro.digest.shard_index`), so repeated content lands on the
  same gateway — whose caches stay warm.  Connections are pooled
  per-process, so a backend instance shipped into pool workers reuses
  one socket per gateway per worker.
"""

from __future__ import annotations

import base64
import socket
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..digest import shard_index
from ..retry import DEFAULT_REMOTE_POLICY, RetryPolicy
from ..service.jobs import ServiceReport, ServiceResult, WarpJob
from . import protocol

Address = Union[str, Tuple[str, int]]

#: Default I/O timeout: CAD flows on cold caches take seconds, not hours.
DEFAULT_TIMEOUT = 600.0


def parse_address(address: Address) -> Tuple[str, int]:
    """``"host:port"`` (or a ready tuple) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return host, int(port)
    host, separator, port = address.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ValueError(f"address {address!r} is not 'host:port'")
    return host, int(port)


# --------------------------------------------------------------------------- blocking client
class GatewayClient:
    """A blocking WARPNET client over one TCP connection.

    With a :class:`~repro.retry.RetryPolicy` attached (``retry=``), the
    request/reply verbs absorb *transient* faults — a ``busy`` rejection
    (backoff scaled by the gateway's reported queue occupancy), a dropped
    or reset connection, a timeout — by backing off and retrying on a
    fresh connection, up to the policy's bounded budget.  Re-sending a
    verb is safe: jobs are content-addressed and deterministic, so the
    worst case of a reply lost after execution is wasted gateway work,
    never a different report.  Typed non-transient errors
    (:class:`~repro.server.protocol.HandshakeError`,
    :class:`~repro.server.protocol.GatewayDrainingError`,
    :class:`~repro.server.protocol.RemoteError`) never retry.  Without a
    policy (the default) every fault surfaces immediately, as before.
    """

    def __init__(self, address: Address, timeout: float = DEFAULT_TIMEOUT,
                 retry: Optional[RetryPolicy] = None):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retry = retry
        self._sock = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        try:
            protocol.send_frame(self._sock, protocol.hello_frame())
            protocol.check_hello(protocol.recv_frame(self._sock))
        except BaseException:
            self._sock.close()
            raise

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    # ----------------------------------------------------------------- plumbing
    def _round_trip_once(self, request: Dict) -> Dict:
        protocol.send_frame(self._sock, request)
        return protocol.raise_for_error(protocol.recv_frame(self._sock))

    def _round_trip(self, request: Dict) -> Dict:
        if self.retry is None:
            return self._round_trip_once(request)
        schedule = self.retry.delays()
        reconnect = False
        while True:
            occupancy = 0.0
            try:
                # Reconnecting happens inside the guarded region: a fault
                # during the replacement handshake is as transient as the
                # one that broke the connection, and must consume an
                # attempt rather than escape the loop.
                if reconnect:
                    self._reconnect()
                    reconnect = False
                return self._round_trip_once(request)
            except protocol.HandshakeError:
                raise  # wrong peer or protocol — retrying cannot help
            except protocol.GatewayBusyError as error:
                if schedule.give_up():
                    raise
                occupancy = error.occupancy()
            except (protocol.ProtocolError, TimeoutError,
                    ConnectionError, OSError, EOFError):
                if schedule.give_up():
                    raise
                reconnect = True
            schedule.backoff(occupancy)

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------------- verbs
    def submit(self, jobs: Sequence[WarpJob], wait: bool = True,
               client_id: Optional[str] = None,
               route: Optional[str] = None) -> Union[ServiceReport, str]:
        """Submit a batch.  ``wait=True`` blocks for the finished
        :class:`ServiceReport`; ``wait=False`` returns the batch id.

        ``client_id`` attributes the batch to a per-client admission
        quota on the gateway; ``route="ring"`` marks the batch as
        ring-routed, letting a mesh gateway forward it to the current
        ring owner when the client's ring is stale.  Both travel as
        additive request keys — older gateways ignore them.

        Raises :class:`~repro.server.protocol.GatewayBusyError` when the
        gateway's admission queue rejects the batch.
        """
        request = {
            "verb": "submit",
            "wait": wait,
            "jobs": protocol.jobs_to_plain(jobs),
        }
        if client_id is not None:
            request["client"] = client_id
        if route is not None:
            request["route"] = route
        reply = self._round_trip(request)
        if wait:
            return ServiceReport.from_plain(reply["report"])
        return reply["batch_id"]

    def status(self, batch_id: str) -> Dict:
        """Queue state of a batch; includes the report once done."""
        reply = self._round_trip({"verb": "status", "batch_id": batch_id})
        if "report" in reply:
            reply = dict(reply)
            reply["report"] = ServiceReport.from_plain(reply["report"])
        return reply

    def stream_results(self, batch_id: str) -> Iterator[ServiceResult]:
        """Yield a batch's results one frame at a time (blocks until the
        batch completes; the terminating ``done`` frame ends iteration).

        Abandoning the iterator early (``break``) drains the remaining
        frames, so the connection stays frame-aligned for later verbs.
        """
        protocol.send_frame(self._sock, {"verb": "stream-results",
                                         "batch_id": batch_id})
        protocol.raise_for_error(protocol.recv_frame(self._sock))
        drained = False
        try:
            while True:
                frame = protocol.raise_for_error(
                    protocol.recv_frame(self._sock))
                if frame.get("done"):
                    drained = True
                    return
                yield ServiceResult.from_plain(frame["result"])
        finally:
            if not drained:
                # Left mid-stream (early break, or a frame/protocol
                # error): resynchronize by reading to the done frame, or
                # close the connection so later verbs fail loudly rather
                # than misread leftover frames.
                try:
                    while True:
                        frame = protocol.recv_frame(self._sock)
                        if frame is None or frame.get("done"):
                            break
                except Exception:  # noqa: BLE001 - already broken
                    self.close()

    def cache_stats(self) -> Dict:
        """The gateway's CAD cache / store / queue statistics."""
        return self._round_trip({"verb": "cache-stats"})

    def metrics(self, since: int = 0, include_spans: bool = True) -> Dict:
        """The gateway's live telemetry snapshot.

        The reply carries the aggregated metric families (gateway process
        merged with its pool workers), queue occupancy, and — unless
        ``include_spans`` is off — the trace spans recorded since the
        ``since`` cursor, plus the ``cursor`` to poll from next time.
        """
        return self._round_trip({"verb": "metrics", "since": since,
                                 "spans": include_spans})

    # --------------------------------------------------------------- mesh verbs
    def mesh_join(self, address: str) -> Dict:
        """Announce gateway ``address`` ("host:port") as a mesh member;
        returns the receiving gateway's view of the membership."""
        return self._round_trip({"verb": "mesh-join", "address": address})

    def mesh_peers(self) -> Dict:
        """The gateway's mesh membership (``members``, ``ring_version``,
        counters) — also how ring-aware clients refresh their ring."""
        return self._round_trip({"verb": "mesh-peers"})

    def mesh_fetch(self, stage: str, key: str) -> Optional[bytes]:
        """Fetch one raw store entry blob from the gateway's disk store,
        or ``None`` when it does not hold the entry.  The blob travels
        base64 inside the JSON frame (the protocol stays JSON-only) and
        is re-validated by the requesting store's own decode path."""
        reply = self._round_trip({"verb": "mesh-fetch",
                                  "stage": stage, "key": key})
        blob = reply.get("blob")
        if blob is None:
            return None
        return base64.b64decode(blob)

    def shutdown(self) -> None:
        """Ask the gateway to stop (acknowledged before it goes down)."""
        self._round_trip({"verb": "shutdown"})


# ---------------------------------------------------------------------- async client
class AsyncGatewayClient:
    """The same verbs on asyncio streams (``await connect()`` first)."""

    def __init__(self, address: Address):
        self.host, self.port = parse_address(address)
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncGatewayClient":
        import asyncio

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        await protocol.write_frame(self._writer, protocol.hello_frame())
        protocol.check_hello(await protocol.read_frame(self._reader))
        return self

    async def _round_trip(self, request: Dict) -> Dict:
        await protocol.write_frame(self._writer, request)
        return protocol.raise_for_error(
            await protocol.read_frame(self._reader))

    async def submit(self, jobs: Sequence[WarpJob],
                     wait: bool = True) -> Union[ServiceReport, str]:
        reply = await self._round_trip({
            "verb": "submit",
            "wait": wait,
            "jobs": protocol.jobs_to_plain(jobs),
        })
        if wait:
            return ServiceReport.from_plain(reply["report"])
        return reply["batch_id"]

    async def status(self, batch_id: str) -> Dict:
        reply = await self._round_trip({"verb": "status",
                                        "batch_id": batch_id})
        if "report" in reply:
            reply = dict(reply)
            reply["report"] = ServiceReport.from_plain(reply["report"])
        return reply

    async def stream_results(self, batch_id: str):
        await protocol.write_frame(self._writer, {"verb": "stream-results",
                                                  "batch_id": batch_id})
        protocol.raise_for_error(await protocol.read_frame(self._reader))
        drained = False
        try:
            while True:
                frame = protocol.raise_for_error(
                    await protocol.read_frame(self._reader))
                if frame.get("done"):
                    drained = True
                    return
                yield ServiceResult.from_plain(frame["result"])
        finally:
            if not drained:
                try:
                    while True:
                        frame = await protocol.read_frame(self._reader)
                        if frame is None or frame.get("done"):
                            break
                except Exception:  # noqa: BLE001 - already broken
                    await self.close()

    async def cache_stats(self) -> Dict:
        return await self._round_trip({"verb": "cache-stats"})

    async def metrics(self, since: int = 0,
                      include_spans: bool = True) -> Dict:
        return await self._round_trip({"verb": "metrics", "since": since,
                                       "spans": include_spans})

    async def shutdown(self) -> None:
        await self._round_trip({"verb": "shutdown"})

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


# ----------------------------------------------------------- per-process connections
#: Idle leased connections per gateway address, as ``(timeout, client)``
#: pairs.  The pool holds only *idle* connections: WARPNET framing is
#: strict request/reply per connection, so a connection is leased to
#: exactly one round trip at a time — two threads sharing a socket would
#: read each other's replies (and a mesh fetch that received a
#: *forward's* reply would install the wrong artifact type).
_CLIENT_POOL: Dict[Tuple[str, int], List[Tuple[float, GatewayClient]]] = {}
_CLIENT_POOL_LOCK = threading.Lock()

#: Idle connections kept per gateway address; concurrent leases beyond
#: this run on their own short-lived connections and are closed on
#: release instead of pooled.
_POOL_IDLE_CAP = 4


@contextmanager
def _pooled_client(address: Tuple[str, int], timeout: float):
    """Lease a connection to ``address`` for one request/reply exchange.

    Concurrent leases get separate sockets; a clean release returns the
    connection to the idle pool (up to :data:`_POOL_IDLE_CAP`), any
    error closes it — a connection that died (or was abandoned mid-
    exchange) must never serve a later caller a stale reply frame.
    """
    client = None
    with _CLIENT_POOL_LOCK:
        idle = _CLIENT_POOL.get(address)
        if idle:
            for index, (idle_timeout, idle_client) in enumerate(idle):
                if idle_timeout == timeout:
                    client = idle_client
                    del idle[index]
                    break
    if client is None:
        client = GatewayClient(address, timeout=timeout)
    try:
        yield client
    except BaseException:
        client.close()
        raise
    with _CLIENT_POOL_LOCK:
        idle = _CLIENT_POOL.setdefault(address, [])
        if len(idle) < _POOL_IDLE_CAP:
            idle.append((timeout, client))
            client = None
    if client is not None:
        client.close()


def _drop_pooled_client(address: Tuple[str, int]) -> None:
    """Close the idle pooled connections to ``address`` (a failure
    talking to it makes every cached connection suspect; in-flight
    leases close themselves on their own error path)."""
    with _CLIENT_POOL_LOCK:
        idle = _CLIENT_POOL.pop(address, [])
    for _, client in idle:
        client.close()


def close_pooled_clients() -> None:
    """Close every per-process pooled gateway connection (tests)."""
    with _CLIENT_POOL_LOCK:
        clients = [client for idle in _CLIENT_POOL.values()
                   for _, client in idle]
        _CLIENT_POOL.clear()
    for client in clients:
        client.close()


# ------------------------------------------------------------------ remote backend
class RemoteWorkerBackend:
    """``worker_fn`` that executes jobs on remote gateway processes.

    Implements the documented backend seam of
    :class:`~repro.service.pool.WarpService`: call it with a
    :class:`WarpJob`, get a :class:`ServiceResult` — never raises; a
    network fault comes back as a failed result, matching the local
    worker contract.  Jobs route across ``addresses`` by the stable
    content digest (same digest as pool shard affinity).

    Transient faults — a stale/reset/dropped connection, a submission
    timeout, a ``busy`` rejection — are retried on a fresh connection
    with the exponential-backoff-plus-jitter ``retry`` policy, the
    ``busy`` backoff scaled by the gateway's reported queue occupancy.
    Resubmission is idempotent: jobs are content-addressed and
    deterministic, so the worst case of a reply lost after execution is
    wasted gateway work (usually absorbed by the gateway's own cache),
    never a different result.  ``busy`` still surviving the whole budget
    is re-raised typed (backpressure is for the caller to see); a
    ``draining`` rejection never retries — that gateway wants traffic to
    stop.  Absorbed retries are counted on the returned result.

    Instances are picklable (connections live in a per-process pool, not
    on the instance), so the backend works both serially
    (``WarpService(workers=0, worker_fn=backend)`` — one job at a time
    over the wire) and pooled (``workers=len(addresses)`` — each local
    shard relays its content partition to "its" gateway concurrently).
    """

    def __init__(self, addresses: Sequence[Address],
                 timeout: float = DEFAULT_TIMEOUT,
                 retry: RetryPolicy = DEFAULT_REMOTE_POLICY):
        if not addresses:
            raise ValueError("RemoteWorkerBackend needs at least one "
                             "gateway address")
        self.addresses = [parse_address(address) for address in addresses]
        self.timeout = timeout
        self.retry = retry

    def address_for(self, job: WarpJob) -> Tuple[str, int]:
        """Content-affinity gateway routing (stable across processes)."""
        return self.addresses[shard_index(repr(job.dedup_key()),
                                          len(self.addresses))]

    def __call__(self, job: WarpJob) -> ServiceResult:
        schedule = self.retry.delays()
        while True:
            # Routed per attempt: here the digest is stable so every
            # attempt lands on the same gateway, but a ring-aware
            # subclass re-routes after _note_failure drops a dead member
            # — that is the failover path.
            address = self.address_for(job)
            occupancy = 0.0
            try:
                result = self._submit_once(address, job)
                result.retries += schedule.attempts
                return result
            except protocol.GatewayDrainingError as error:
                return self._failed(job, address, error)
            except protocol.GatewayBusyError as error:
                if schedule.give_up():
                    raise  # backpressure is for the caller to see
                occupancy = error.occupancy()
            except protocol.HandshakeError as error:
                _drop_pooled_client(address)
                return self._failed(job, address, error)
            except (protocol.ProtocolError, TimeoutError,
                    ConnectionError, OSError, EOFError) as error:
                _drop_pooled_client(address)
                self._note_failure(address)
                if schedule.give_up():
                    return self._failed(job, address, error)
            except Exception as error:  # noqa: BLE001 - remote fault boundary
                return self._failed(job, address, error)
            schedule.backoff(occupancy)

    def _note_failure(self, address: Tuple[str, int]) -> None:
        """Hook for subclasses: a connection-level failure talking to
        ``address`` (the ring backend drops the member and re-routes)."""

    def _submit_once(self, address: Tuple[str, int],
                     job: WarpJob) -> ServiceResult:
        with _pooled_client(address, self.timeout) as client:
            report = client.submit([job], wait=True)
        if not report.results:
            raise protocol.ProtocolError("gateway returned an empty report")
        return report.results[0]

    @staticmethod
    def _failed(job: WarpJob, address: Tuple[str, int],
                error: BaseException) -> ServiceResult:
        from ..service.pool import _failed_result

        return _failed_result(
            job, (f"remote gateway {address[0]}:{address[1]} failed: "
                  f"{type(error).__name__}: {error}"))

    def close(self) -> None:
        """Drop this process's pooled connections to our gateways."""
        for address in self.addresses:
            _drop_pooled_client(address)

    # Connections are per-process state; the instance itself is plain data.
    def __getstate__(self) -> Dict:
        return {"addresses": self.addresses, "timeout": self.timeout,
                "retry": self.retry}

    def __setstate__(self, state: Dict) -> None:
        self.addresses = [tuple(address) for address in state["addresses"]]
        self.timeout = state["timeout"]
        self.retry = state.get("retry", DEFAULT_REMOTE_POLICY)
