"""ARM hard-core comparison models (the SimpleScalar-for-ARM stand-in).

The paper obtains per-benchmark execution times for ARM7, ARM9, ARM10 and
ARM11 hard cores with the SimpleScalar simulator ported to the ARM ISA.
SimpleScalar and the ARM compiler toolchain are not available here, so the
comparison points are produced by a calibrated trace-driven model instead:

1. the benchmark's *dynamic instruction mix* is taken from the MicroBlaze
   functional simulation (per-class instruction counts);
2. an ISA-translation factor per class converts MicroBlaze instructions
   into ARM instructions (e.g. ``imm`` prefixes disappear, barrel shifts
   frequently fold into ALU operands, compare+branch pairs fuse partially);
3. a per-class CPI table for each ARM generation (three-stage ARM7 without
   branch prediction through the eight-stage, branch-predicted ARM11)
   converts the ARM instruction counts into cycles at the paper's clock
   rates (100 / 250 / 325 / 550 MHz).

The resulting model reproduces the qualitative ordering the paper reports —
the warp processor outperforms the ARM7/9/10 and loses to the ARM11 on raw
performance — and its absolute ratios land in the same range (the ARM11
roughly an order of magnitude faster than the plain MicroBlaze).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.instructions import InstrClass
from ..microblaze.system import ExecutionResult
from ..power.constants import ARM_POWER, ArmPower

#: MicroBlaze instruction class -> equivalent number of ARM instructions.
ISA_TRANSLATION_FACTORS: Dict[InstrClass, float] = {
    InstrClass.ALU: 1.0,
    InstrClass.LOGICAL: 1.0,
    InstrClass.SHIFT: 0.6,          # single-bit shifts fold into ARM operands
    InstrClass.BARREL_SHIFT: 0.5,   # barrel shifts usually fold into ALU ops
    InstrClass.MULTIPLY: 1.0,
    InstrClass.DIVIDE: 1.0,
    InstrClass.COMPARE: 0.7,        # many compares fuse with the branch
    InstrClass.SEXT: 0.5,
    InstrClass.LOAD: 1.0,
    InstrClass.STORE: 1.0,
    InstrClass.BRANCH_COND: 1.0,
    InstrClass.BRANCH_UNCOND: 0.9,
    InstrClass.CALL: 1.0,
    InstrClass.RETURN: 1.0,
    InstrClass.IMM_PREFIX: 0.3,     # 32-bit literals become literal-pool loads
}


@dataclass(frozen=True)
class ArmCoreModel:
    """Timing model of one ARM generation."""

    name: str
    clock_mhz: float
    #: Cycles per instruction class.
    cpi: Dict[str, float] = field(default_factory=dict)

    def cycles_for_class(self, klass: InstrClass, count: float) -> float:
        category = _CATEGORY_BY_CLASS[klass]
        return count * self.cpi.get(category, 1.0)


_CATEGORY_BY_CLASS: Dict[InstrClass, str] = {
    InstrClass.ALU: "alu",
    InstrClass.LOGICAL: "alu",
    InstrClass.SHIFT: "alu",
    InstrClass.BARREL_SHIFT: "alu",
    InstrClass.COMPARE: "alu",
    InstrClass.SEXT: "alu",
    InstrClass.IMM_PREFIX: "alu",
    InstrClass.MULTIPLY: "multiply",
    InstrClass.DIVIDE: "divide",
    InstrClass.LOAD: "load",
    InstrClass.STORE: "store",
    InstrClass.BRANCH_COND: "branch",
    InstrClass.BRANCH_UNCOND: "branch",
    InstrClass.CALL: "branch",
    InstrClass.RETURN: "branch",
}

#: The four comparison cores of Figures 6 and 7 (clock rates from the paper).
ARM_CORES: Dict[str, ArmCoreModel] = {
    "ARM7": ArmCoreModel("ARM7", 100.0, {
        "alu": 1.0, "multiply": 4.0, "divide": 30.0,
        "load": 3.0, "store": 2.0, "branch": 3.0,
    }),
    "ARM9": ArmCoreModel("ARM9", 250.0, {
        "alu": 1.0, "multiply": 3.0, "divide": 25.0,
        "load": 2.0, "store": 1.0, "branch": 2.5,
    }),
    "ARM10": ArmCoreModel("ARM10", 325.0, {
        "alu": 1.0, "multiply": 3.0, "divide": 20.0,
        "load": 1.6, "store": 1.0, "branch": 1.8,
    }),
    "ARM11": ArmCoreModel("ARM11", 550.0, {
        "alu": 1.0, "multiply": 2.0, "divide": 18.0,
        "load": 1.3, "store": 1.0, "branch": 1.5,
    }),
}


@dataclass
class ArmExecutionEstimate:
    """Estimated execution of one benchmark on one ARM core."""

    core: ArmCoreModel
    instructions: float
    cycles: float

    @property
    def seconds(self) -> float:
        return self.cycles / (self.core.clock_mhz * 1e6)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def power(self) -> ArmPower:
        return ARM_POWER[self.core.name]

    @property
    def energy_j(self) -> float:
        return self.power.active_mw * 1e-3 * self.seconds


def estimate_arm_execution(result: ExecutionResult,
                           core: ArmCoreModel) -> ArmExecutionEstimate:
    """Estimate how ``core`` would run the program behind ``result``.

    ``result`` must come from the MicroBlaze configuration used in the
    paper's experiments (barrel shifter and multiplier present) so that the
    instruction mix is not polluted by software multiply/shift routines the
    ARM would never execute.
    """
    instructions = 0.0
    cycles = 0.0
    for klass, count in result.stats.class_counts.items():
        arm_count = count * ISA_TRANSLATION_FACTORS.get(klass, 1.0)
        instructions += arm_count
        cycles += core.cycles_for_class(klass, arm_count)
    return ArmExecutionEstimate(core=core, instructions=instructions, cycles=cycles)


def estimate_all_arm_cores(result: ExecutionResult) -> Dict[str, ArmExecutionEstimate]:
    """Estimates for all four comparison cores."""
    return {name: estimate_arm_execution(result, core)
            for name, core in ARM_CORES.items()}
