"""ARM hard-core comparison models (ARM7/9/10/11 of Figures 6 and 7)."""

from .models import (
    ARM_CORES,
    ArmCoreModel,
    ArmExecutionEstimate,
    ISA_TRANSLATION_FACTORS,
    estimate_all_arm_cores,
    estimate_arm_execution,
)

__all__ = [
    "ARM_CORES",
    "ArmCoreModel",
    "ArmExecutionEstimate",
    "ISA_TRANSLATION_FACTORS",
    "estimate_all_arm_cores",
    "estimate_arm_execution",
]
