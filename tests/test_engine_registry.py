"""The pluggable execution-engine registry and its end-to-end threading.

Covers the engine contract itself (registration, lookup, capability-based
fallback), the one-clear-error validation promise at every layer an
engine name travels through (CPU, ``WarpJob``, the ``repro-warp`` CLI,
the WARPNET job codec), and the batched OPB peripheral ticks of the block
engines' dispatch loops.
"""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.microblaze import (
    DEFAULT_ENGINE,
    MicroBlazeSystem,
    PAPER_CONFIG,
    UnknownEngineError,
    engine_names,
    register_engine,
    run_program,
    validate_engine_name,
)
from repro.microblaze.engines import _REGISTRY, create_engine
from repro.microblaze.engines.threaded import ThreadedEngine
from repro.microblaze.opb import OnChipPeripheralBus
from repro.service.cli import main as cli_main
from repro.service.jobs import JobSpecError, WarpJob, suite_sweep_jobs

LOOP = """
    addi r5, r0, 10
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    bri 0
"""


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_engines_registered(self):
        names = engine_names()
        for name in ("interp", "threaded", "jit", "region"):
            assert name in names
        assert DEFAULT_ENGINE in names

    def test_validate_none_resolves_default(self):
        assert validate_engine_name(None) == DEFAULT_ENGINE

    def test_unknown_engine_error_lists_registered(self):
        with pytest.raises(UnknownEngineError) as info:
            validate_engine_name("tracing-jit")
        message = str(info.value)
        assert "tracing-jit" in message
        for name in engine_names():
            assert name in message

    def test_cpu_rejects_unknown_engine(self):
        with pytest.raises(UnknownEngineError):
            MicroBlazeSystem(config=PAPER_CONFIG, engine="bogus")

    def test_register_engine_end_to_end(self):
        """A registered third-party engine is selectable everywhere a name
        is: system construction, run_program, WarpJob."""

        class CountingEngine(ThreadedEngine):
            runs = 0

            def run(self, max_instructions, max_cycles=None):
                CountingEngine.runs += 1
                super().run(max_instructions, max_cycles)

        register_engine("unit-test-counting", CountingEngine)
        try:
            program = assemble(LOOP)
            reference = run_program(program, PAPER_CONFIG, engine="interp")
            observed = run_program(program, PAPER_CONFIG,
                                   engine="unit-test-counting")
            assert CountingEngine.runs == 1
            assert observed.stats == reference.stats
            job = WarpJob(name="custom", benchmark="brev",
                          engine="unit-test-counting")
            assert job.engine == "unit-test-counting"
        finally:
            _REGISTRY.pop("unit-test-counting", None)

    def test_engine_instance_capabilities(self):
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="interp")
        impl = system.cpu._engine_impl
        assert impl.full_trace and impl.supports_max_cycles
        for engine in ("threaded", "jit", "region"):
            impl = MicroBlazeSystem(config=PAPER_CONFIG,
                                    engine=engine).cpu._engine_impl
            assert impl.branch_hooks
            assert not impl.full_trace

    def test_create_engine_binds_name(self):
        cpu = MicroBlazeSystem(config=PAPER_CONFIG).cpu
        assert create_engine("jit", cpu).name == "jit"

    def test_engine_without_branch_hooks_falls_back(self):
        """An engine declaring branch_hooks=False must not run while a
        branch hook is attached — the driver falls back to the
        interpreter so the hook still sees every branch."""
        from repro.profiler.profiler import OnChipProfiler

        class DeafEngine(ThreadedEngine):
            branch_hooks = False
            dispatches = 0

            def run(self, max_instructions, max_cycles=None):
                DeafEngine.dispatches += 1
                super().run(max_instructions, max_cycles)

        register_engine("unit-test-deaf", DeafEngine)
        try:
            program = assemble(LOOP)
            profiler = OnChipProfiler()
            result = run_program(program, PAPER_CONFIG,
                                 engine="unit-test-deaf",
                                 listeners=[profiler])
            assert DeafEngine.dispatches == 0  # interpreter took over
            assert profiler.total_branches \
                == result.stats.branches_taken \
                + result.stats.branches_not_taken
            # Without a hook attached the engine dispatches normally.
            run_program(program, PAPER_CONFIG, engine="unit-test-deaf")
            assert DeafEngine.dispatches == 1
        finally:
            _REGISTRY.pop("unit-test-deaf", None)


# --------------------------------------------------------------- service layer
class TestServiceValidation:
    def test_warpjob_rejects_unknown_engine(self):
        with pytest.raises(JobSpecError) as info:
            WarpJob(name="bad", benchmark="brev", engine="turbo")
        message = str(info.value)
        assert "bad" in message and "turbo" in message
        assert "registered engines" in message
        for name in engine_names():
            assert name in message

    def test_warpjob_rejects_non_string_engine(self):
        """Unhashable junk from a JSON job file (e.g. a list) stays on
        the clean-error path, not a TypeError from the registry dict."""
        with pytest.raises(JobSpecError) as info:
            WarpJob(name="bad", benchmark="brev", engine=["jit"])
        assert "registered engines" in str(info.value)

    def test_unknown_engine_error_survives_pickling(self):
        """Pool workers pickle exceptions back to the caller; the
        one-arg constructor must round-trip without double-wrapping."""
        import pickle

        error = pickle.loads(pickle.dumps(UnknownEngineError("turbo")))
        assert str(error).count("unknown engine") == 1
        assert error.name == "turbo"

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(JobSpecError):
            suite_sweep_jobs(engines=("threaded", "turbo"))

    def test_sweep_accepts_jit(self):
        jobs = suite_sweep_jobs(engines=("threaded", "jit", "interp"),
                                benchmarks=("brev",))
        assert [job.engine for job in jobs] == ["threaded", "jit", "interp"]
        # Distinct engines are distinct content (no accidental dedup).
        assert len({job.dedup_key() for job in jobs}) == 3

    def test_cli_suite_rejects_unknown_engine(self, capsys):
        exit_code = cli_main(["suite", "--engines", "turbo", "--quiet"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "turbo" in err and "registered engines" in err

    def test_wire_codec_round_trips_engine(self):
        from repro.server.protocol import job_from_plain, job_to_plain

        job = WarpJob(name="wired", benchmark="brev", engine="jit")
        twin = job_from_plain(job_to_plain(job))
        assert twin.engine == "jit"
        assert twin.dedup_key() == job.dedup_key()

    def test_wire_codec_rejects_unknown_engine(self):
        from repro.server.protocol import job_from_plain, job_to_plain

        plain = job_to_plain(WarpJob(name="wired", benchmark="brev"))
        plain["engine"] = "turbo"
        with pytest.raises(JobSpecError):
            job_from_plain(plain)


# ------------------------------------------------------------- OPB tick batching
class TickCounter:
    """Opt-in ticking peripheral counting delivered time and tick calls."""

    base_address = 0x9000_0000
    window_size = 4
    name = "ticks"
    wants_ticks = True

    def __init__(self):
        self.total = 0
        self.calls = 0

    def read(self, offset):
        return 0

    def write(self, offset, value):
        return None

    def tick(self, cycles):
        self.total += cycles
        self.calls += 1


class PeriodicTicker(TickCounter):
    """Ticking peripheral with a periodic deadline every ``period`` cycles."""

    name = "timer"

    def __init__(self, period):
        super().__init__()
        self.period = period

    def tick_deadline(self):
        return self.period - (self.total % self.period)

    @property
    def events(self):
        return self.total // self.period


class TestTickBatching:
    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit", "region"])
    def test_ticked_time_equals_stats_cycles(self, engine):
        peripheral = TickCounter()
        result = run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                             peripherals=[peripheral])
        assert peripheral.total == result.stats.cycles

    @pytest.mark.parametrize("engine", ["threaded", "jit", "region"])
    def test_block_engines_batch_ticks(self, engine):
        batched = TickCounter()
        result = run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                             peripherals=[batched])
        reference = TickCounter()
        run_program(assemble(LOOP), PAPER_CONFIG, engine="interp",
                    peripherals=[reference])
        assert batched.total == reference.total == result.stats.cycles
        # One tick per superblock, not one per instruction.
        assert batched.calls < reference.calls

    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit", "region"])
    def test_deadline_peripheral_time_is_exact(self, engine):
        peripheral = PeriodicTicker(period=16)
        result = run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                             peripherals=[peripheral])
        assert peripheral.total == result.stats.cycles
        assert peripheral.events == result.stats.cycles // 16

    @pytest.mark.parametrize("engine", ["threaded", "jit", "region"])
    def test_deadline_refines_batching(self, engine):
        """A declared deadline inside a block drops delivery to finer
        granularity than deadline-free batching."""
        free = TickCounter()
        run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                    peripherals=[free])
        timed = PeriodicTicker(period=4)
        run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                    peripherals=[timed])
        assert timed.total == free.total
        assert timed.calls > free.calls

    def test_non_ticking_peripherals_cost_nothing(self):
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        assert system.opb.ticking == []
        assert system.opb.next_deadline() is None

    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit", "region"])
    def test_engine_time_skips_non_opted_peripherals(self, engine):
        """Engine-driven ticks go only to opted-in peripherals; a plain
        peripheral attached alongside a ticking one receives none."""
        bystander = TickCounter()
        bystander.wants_ticks = False
        bystander.base_address = 0x9100_0000
        opted = TickCounter()
        result = run_program(assemble(LOOP), PAPER_CONFIG, engine=engine,
                             peripherals=[bystander, opted])
        assert opted.total == result.stats.cycles
        assert bystander.total == 0 and bystander.calls == 0

    @pytest.mark.parametrize("engine", ["threaded", "jit", "region"])
    def test_deadline_respected_in_precise_mode(self, engine):
        """Precise-fault-stats blocks carry no wholesale deltas, but the
        deadline pre-check still needs their static cycle count: a
        deadline peripheral must see finer delivery than free batching in
        precise mode too."""
        free = TickCounter()
        free_result = run_program(assemble(LOOP), PAPER_CONFIG,
                                  engine=engine, precise_fault_stats=True,
                                  peripherals=[free])
        timed = PeriodicTicker(period=2)
        timed_result = run_program(assemble(LOOP), PAPER_CONFIG,
                                   engine=engine, precise_fault_stats=True,
                                   peripherals=[timed])
        assert timed_result.stats == free_result.stats
        assert timed.total == free.total == free_result.stats.cycles
        assert timed.calls > free.calls

    def test_tick_bounded_chunks_at_deadlines(self):
        bus = OnChipPeripheralBus()
        peripheral = PeriodicTicker(period=7)
        peripheral.total = 2  # 5 cycles to the first boundary
        chunks = []
        original = peripheral.tick

        def recording(cycles):
            chunks.append(cycles)
            original(cycles)

        peripheral.tick = recording
        bus.attach(peripheral)
        bus.tick_bounded(12)
        assert sum(chunks) == 12
        assert chunks == [5, 7]

    @pytest.mark.parametrize("engine", ["threaded", "jit", "region"])
    @pytest.mark.parametrize("period", [2, 3, 5, 7])
    def test_deadline_step_preserves_imm_fusion(self, engine, period):
        """Deadline stepping must never leave an imm latch behind and
        then dispatch a block compiled without the fusion: a fused
        32-bit immediate inside the loop stays fused whatever the tick
        period."""
        source = """
            addi r5, r0, 20
            addi r3, r0, 0
        loop:
            imm 1
            addi r3, r3, 0      # fused: r3 += 0x10000 per iteration
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """
        reference = run_program(assemble(source), PAPER_CONFIG,
                                engine="interp")
        assert reference.return_value == 20 * 0x10000
        peripheral = PeriodicTicker(period=period)
        observed = run_program(assemble(source), PAPER_CONFIG,
                               engine=engine, peripherals=[peripheral])
        assert observed.return_value == reference.return_value
        assert observed.stats == reference.stats
        assert peripheral.total == observed.stats.cycles

    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit", "region"])
    @pytest.mark.parametrize("precise", [False, True])
    def test_mid_block_fault_still_delivers_ticks(self, engine, precise):
        """A block faulting mid-way must still deliver the cycles it
        accrued: ticked time tracks the recorded statistics exactly,
        interpreter-identical in precise mode."""
        from repro.microblaze import MemoryError_, MicroBlazeSystem

        source = """
            addi r5, r0, 8
            addi r6, r0, 1
            add  r7, r5, r6
            lw   r9, r7, r0     # misaligned load at 9: faults mid-block
            bri  0
        """
        peripheral = TickCounter()
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine,
                                  precise_fault_stats=precise,
                                  peripherals=[peripheral])
        with pytest.raises(MemoryError_):
            system.run(assemble(source, name="faulty"))
        assert peripheral.total == system.cpu.stats.cycles

    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit", "region"])
    def test_suite_benchmark_with_ticking_peripheral(self, engine,
                                                     compiled_small_programs):
        """Ticking changes nothing about execution itself."""
        program = compiled_small_programs["brev"]
        plain = run_program(program, PAPER_CONFIG, engine=engine)
        peripheral = PeriodicTicker(period=32)
        ticked = run_program(program, PAPER_CONFIG, engine=engine,
                             peripherals=[peripheral])
        assert ticked.stats == plain.stats
        assert ticked.return_value == plain.return_value
        assert peripheral.total == plain.stats.cycles
