"""Assembler ↔ disassembler round-trip properties.

The fuzz generator (``repro.fuzz.generator``) exercises nearly the whole
mnemonic surface the assembler accepts, so its deterministic output makes
a convenient corpus for the encoding contract: every machine word the
assembler emits must decode to an instruction that re-encodes to the same
word, and a program's disassembly must re-assemble to a bit-identical
text image.  ``test_isa`` pins individual encodings; this module pins the
global property over generated programs.
"""

from __future__ import annotations

import pytest

from repro.fuzz import generate_program, profile_names
from repro.isa import (
    EncodingError,
    assemble,
    decode,
    disassemble,
    encode,
    listing,
)

SEEDS = (0, 1, 7)


@pytest.mark.parametrize("profile", profile_names())
@pytest.mark.parametrize("seed", SEEDS)
class TestGeneratedProgramRoundTrip:
    def test_every_word_decodes_and_reencodes(self, profile, seed):
        program = generate_program(seed, profile)
        assert program.text, "generated program has an empty text section"
        for index, word in enumerate(program.text):
            instr = decode(word, address=4 * index)
            assert encode(instr) == word, (
                f"word {index} ({word:#010x}) decoded to {instr} "
                f"which re-encodes to {encode(instr):#010x}")

    def test_disassembly_reassembles_bit_identically(self, profile, seed):
        program = generate_program(seed, profile)
        source = "\n".join(str(instr) for instr in program.decoded())
        reassembled = assemble(source, name="roundtrip")
        assert reassembled.text == program.text

    def test_disassemble_matches_decoded(self, profile, seed):
        program = generate_program(seed, profile)
        assert disassemble(program.text) == program.decoded()


class TestDecodeTotality:
    def test_arbitrary_words_decode_or_raise_cleanly(self):
        """Arbitrary words either raise :class:`EncodingError` — never a
        stray exception — or decode to an instruction whose re-encoding is
        the *canonical* word for it: re-decoding is a fixed point.  (The
        decoder tolerates junk in don't-care bits, so exact word-level
        round-trip only holds for assembler-emitted words; see the
        generated-program tests above.)"""
        # A deterministic pseudo-random walk over the 32-bit word space
        # (LCG constants from Numerical Recipes).
        word, decoded = 0x12345678, 0
        for _ in range(4096):
            word = (1664525 * word + 1013904223) & 0xFFFFFFFF
            try:
                instr = decode(word)
            except EncodingError:
                continue
            decoded += 1
            canonical = encode(instr)
            assert decode(canonical) == instr
            assert encode(decode(canonical)) == canonical
        assert decoded > 0, "the walk never hit a valid encoding"

    def test_listing_is_stable(self):
        program = generate_program(3, "mixed")
        assert listing(program) == listing(program)
