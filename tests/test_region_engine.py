"""Tests for the region-fusing execution engine (``engine="region"``).

The registry-wide differential suite (``test_engine_differential``)
already proves bit-exactness; this module pins the mechanisms that make
the region engine more than a jit clone:

* **Formation** — hot block entries past :attr:`hot_threshold` fuse
  their static successor graph into one region function; cold code (and
  everything, under a prohibitive threshold) stays on block dispatch.
* **Deferred statistics** — per-block counters accumulate inside the
  region and fold into the CPU's counter array at region exit, so a
  preempted (budget-split) run still reports exact statistics.
* **Invalidation** — a live binary patch tears down exactly the regions
  covering the patched address, and the patched code re-profiles.
* **Checkpoints** — regions are derived state: capture mid-run with
  regions formed, restore anywhere (including onto other engines), and
  ``on_restore()`` drops them for rebuild against the restored text.
* **Profiler seeding** — an attached profiler's ``edge_counts`` pre-warm
  the promotion counters, shortening warm-up.
* **Telemetry** — region fusion publishes the ``warp_codegen_*`` metric
  families when telemetry is live.
* **Registry integration** — the name travels every layer (jobs, wire
  codec, sweeps) like any other registered engine.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.isa import assemble
from repro.microblaze import (
    ExecutionLimitExceeded,
    MicroBlazeSystem,
    PAPER_CONFIG,
    capture_checkpoint,
    engine_names,
    run_program,
    run_slice,
    spawn_from_checkpoint,
)
from repro.partition.binary_patch import patch_live_words
from repro.profiler.profiler import OnChipProfiler

HOT_LOOP = """
    addi r5, r0, 200
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    bri 0
"""


def _region_system(threshold: int = 8) -> MicroBlazeSystem:
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine="region")
    system.cpu._engine_impl.hot_threshold = threshold
    return system


def _impl(system: MicroBlazeSystem):
    return system.cpu._engine_impl


# ------------------------------------------------------------------ formation
class TestFormation:
    def test_hot_loop_forms_region_and_matches_interp(self):
        program = assemble(HOT_LOOP)
        reference = run_program(program, PAPER_CONFIG, engine="interp")
        system = _region_system()
        result = system.run(program)
        assert _impl(system).regions, "hot loop must have been promoted"
        assert result.stats == reference.stats
        assert result.return_value == reference.return_value == 200

    def test_region_fuses_multiple_superblocks(self, compiled_small_programs):
        system = _region_system()
        system.run(compiled_small_programs["canrdr"])
        meta = _impl(system)._region_meta
        assert meta
        assert any(len(members) >= 2 for _low, _high, members
                   in meta.values()), "expected a multi-superblock region"

    def test_prohibitive_threshold_disables_fusion(self,
                                                   compiled_small_programs):
        program = compiled_small_programs["brev"]
        reference = run_program(program, PAPER_CONFIG, engine="interp")
        system = _region_system(threshold=1 << 30)
        result = system.run(program)
        assert not _impl(system).regions
        assert result.stats == reference.stats
        assert result.return_value == reference.return_value

    def test_only_executed_blocks_join_regions(self,
                                               compiled_small_programs):
        """Cold successors (error paths, never-taken arms) stay outside
        the region: membership requires a previously dispatched block.
        This is also what keeps fetch-port accounting exact."""
        system = _region_system()
        system.run(compiled_small_programs["g3fax"])
        impl = _impl(system)
        for _root, (_low, _high, members) in impl._region_meta.items():
            for entry in members:
                assert entry in impl.blocks

    def test_capability_flags(self):
        impl = _impl(_region_system())
        assert impl.branch_hooks
        assert not impl.full_trace
        assert not impl.supports_max_cycles
        assert not impl.supports_halt_address

    def test_full_trace_listener_falls_back_to_interpreter(self):
        """A full-trace listener (no ``on_branch``) forces the CPU off
        the region engine, so the listener still sees every event."""
        events = []

        class Recorder:
            def on_instruction(self, event):
                events.append(event.pc)

        program = assemble(HOT_LOOP)
        system = _region_system()
        system.cpu.add_listener(Recorder())
        result = system.run(program)
        assert not _impl(system).regions  # engine never dispatched
        assert len(events) == result.stats.instructions


# ----------------------------------------------------------- deferred statistics
class TestDeferredStatistics:
    def test_budget_split_mid_region_is_exact(self):
        """Preempting inside a fused region must report the same
        statistics and registers as the interpreter at the same budget —
        the deferred counters fold out at the split point."""
        program = assemble(HOT_LOOP)
        for budget in (83, 200, 301):
            states = {}
            for engine in ("interp", "region"):
                system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
                if engine == "region":
                    system.cpu._engine_impl.hot_threshold = 8
                system.load(program)
                system.cpu.reset(entry_point=program.entry_point)
                with pytest.raises(ExecutionLimitExceeded):
                    system.cpu.run(max_instructions=budget)
                states[engine] = (system.cpu.stats,
                                  list(system.cpu.registers), system.cpu.pc)
            assert states["region"] == states["interp"], budget

    def test_resume_after_budget_split_completes_exactly(self):
        program = assemble(HOT_LOOP)
        reference = run_program(program, PAPER_CONFIG, engine="interp")
        system = _region_system()
        system.load(program)
        system.cpu.reset(entry_point=program.entry_point)
        with pytest.raises(ExecutionLimitExceeded):
            system.cpu.run(max_instructions=150)
        assert _impl(system).regions
        stats = system.cpu.run()
        assert stats == reference.stats
        assert system.cpu.read_register(3) == reference.return_value


# --------------------------------------------------------------- invalidation
class TestInvalidation:
    def _warm(self):
        program = assemble(HOT_LOOP)
        system = _region_system()
        system.load(program)
        system.cpu.reset(entry_point=program.entry_point)
        with pytest.raises(ExecutionLimitExceeded):
            system.cpu.run(max_instructions=100)
        assert _impl(system).regions, "loop must be fused before patching"
        return system, program

    def test_patch_tears_down_covering_region(self):
        system, _program = self._warm()
        impl = _impl(system)
        patched = assemble(HOT_LOOP.replace("addi r3, r3, 1",
                                            "addi r3, r3, 16"))
        patch_live_words(system, 8, [patched.text[2]])
        assert not impl.regions, "patched region must be dropped"
        assert not impl._region_meta
        # The patched loop re-profiles, re-fuses against the new text and
        # finishes with the patched increment.
        system.cpu.run()
        assert impl.regions, "patched code must re-form a region"
        reference_system = MicroBlazeSystem(config=PAPER_CONFIG,
                                            engine="interp")
        reference_system.load(assemble(HOT_LOOP))
        reference_system.cpu.reset(entry_point=0)
        with pytest.raises(ExecutionLimitExceeded):
            reference_system.cpu.run(max_instructions=100)
        patch_live_words(reference_system, 8, [patched.text[2]])
        reference_system.cpu.run()
        assert system.cpu.read_register(3) \
            == reference_system.cpu.read_register(3)

    def test_patch_outside_region_keeps_it(self):
        system, _program = self._warm()
        impl = _impl(system)
        regions_before = dict(impl.regions)
        # The final ``bri 0`` at byte 20 sits outside the fused loop.
        low = min(low for low, _high, _m in impl._region_meta.values())
        high = max(high for _low, high, _m in impl._region_meta.values())
        assert not (low <= 20 <= high), "halt block unexpectedly fused"
        patch_live_words(system, 20, [assemble("bri 0").text[0]])
        assert impl.regions == regions_before

    def test_wholesale_invalidate_clears_everything(self):
        system, _program = self._warm()
        impl = _impl(system)
        impl.invalidate()
        assert not impl.regions and not impl._region_meta
        assert not impl.blocks and not impl._entry_counts


# ---------------------------------------------------------------- checkpoints
class TestCheckpoints:
    def _blob_with_regions_formed(self):
        program = assemble(HOT_LOOP)
        system = _region_system()
        system.start(program)
        finished = run_slice(system, 150)
        assert not finished
        assert _impl(system).regions, "checkpoint must cover live regions"
        return program, capture_checkpoint(system)

    @pytest.mark.parametrize("resume_engine", engine_names())
    def test_capture_with_regions_resumes_anywhere(self, resume_engine):
        program, blob = self._blob_with_regions_formed()
        reference = run_program(program, PAPER_CONFIG, engine="interp")
        restored = spawn_from_checkpoint(blob, engine=resume_engine)
        result = restored.resume()
        assert result.stats == reference.stats
        assert result.return_value == reference.return_value
        assert result.data_image == reference.data_image

    def test_on_restore_drops_derived_regions(self):
        _program, blob = self._blob_with_regions_formed()
        restored = spawn_from_checkpoint(blob, engine="region")
        impl = _impl(restored)
        assert not impl.regions and not impl._region_meta
        assert not impl.blocks, "translations are derived state"

    def test_capture_on_jit_resume_on_region(self, compiled_small_programs):
        program = compiled_small_programs["bitmnp"]
        reference = run_program(program, PAPER_CONFIG, engine="interp")
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="jit")
        system.start(program)
        assert not run_slice(system, 400)
        blob = capture_checkpoint(system)
        restored = spawn_from_checkpoint(blob, engine="region")
        restored.cpu._engine_impl.hot_threshold = 8
        result = restored.resume()
        assert result.stats == reference.stats
        assert result.return_value == reference.return_value
        assert result.data_image == reference.data_image


# ------------------------------------------------------------ profiler seeding
class TestProfilerSeeding:
    def test_edge_counts_seed_promotion(self):
        """A profiler that has already proven the loop hot pre-warms the
        promotion counter: the region forms on the earliest possible
        dispatch instead of re-counting from zero."""
        program = assemble(HOT_LOOP)
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, engine="interp",
                    listeners=[profiler])
        loop_entry = 8
        assert any(dst == loop_entry and count >= 64
                   for (_src, dst), count in profiler.edge_counts.items())

        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="region")
        system.cpu.add_listener(profiler)  # hook carries the edge counts
        seeded = _impl(system)
        assert seeded.hot_threshold == 64  # the default, deliberately
        system.run(program)
        assert loop_entry in {entry for _root, (_l, _h, members)
                              in seeded._region_meta.items()
                              for entry in members}

        # Without seeding, the same threshold over the same 200-iteration
        # loop still promotes — but a *short* run stays cold.
        short = assemble(HOT_LOOP.replace("200", "30"))
        cold = MicroBlazeSystem(config=PAPER_CONFIG, engine="region")
        cold.run(short)
        assert not _impl(cold).regions
        warm = MicroBlazeSystem(config=PAPER_CONFIG, engine="region")
        warm.cpu.add_listener(profiler)
        warm.run(short)
        assert _impl(warm).regions, "seeded counters must promote early"


# -------------------------------------------------------------------- telemetry
class TestTelemetry:
    def test_codegen_families_published_live(self):
        # A unique iteration constant makes the entry block a guaranteed
        # code-cache miss (-> compiles); the second run over the same
        # program is a guaranteed hit (-> cache_hits).
        program = assemble(HOT_LOOP.replace("200", "199"),
                           name="telemetry-loop")
        with obs.active_telemetry() as telemetry:
            for _ in range(2):
                system = _region_system()
                system.run(program)
            snapshot = telemetry.snapshot()
        assert _impl(system).regions
        for family in ("warp_codegen_compiles", "warp_codegen_cache_hits",
                       "warp_codegen_compile_ms", "warp_codegen_regions",
                       "warp_codegen_region_blocks",
                       "warp_codegen_events", "warp_codegen_cache_entries"):
            assert family in snapshot, family
        region_count = sum(
            sample["value"]
            for sample in snapshot["warp_codegen_regions"]["samples"])
        assert region_count >= 1
        # The collector mirrors the always-on accounting, including the
        # fused-superblock totals, into the snapshot.
        events = {(sample["labels"]["engine"], sample["labels"]["kind"]):
                  sample["value"]
                  for sample in snapshot["warp_codegen_events"]["samples"]}
        assert events[("region", "regions")] >= 1
        assert events[("region", "region_blocks")] \
            >= events[("region", "regions")]


# ------------------------------------------------------------------- registry
class TestRegistryIntegration:
    def test_region_is_registered(self):
        assert "region" in engine_names()

    def test_warpjob_accepts_region(self):
        from repro.service.jobs import WarpJob, suite_sweep_jobs

        job = WarpJob(name="r", benchmark="brev", engine="region")
        assert job.engine == "region"
        jobs = suite_sweep_jobs(engines=("jit", "region"),
                                benchmarks=("brev",))
        assert [j.engine for j in jobs] == ["jit", "region"]
        assert len({j.dedup_key() for j in jobs}) == 2

    def test_wire_codec_round_trips_region(self):
        from repro.server.protocol import job_from_plain, job_to_plain
        from repro.service.jobs import WarpJob

        job = WarpJob(name="wired", benchmark="brev", engine="region")
        assert job_from_plain(job_to_plain(job)).engine == "region"
