"""Tests for the threaded-code execution engine.

Three concerns live here:

* **Differential equivalence** — every suite benchmark runs on both the
  reference interpreter (``engine="interp"``) and the threaded-code engine
  (``engine="threaded"``) and must produce identical ``ExecutionStats``,
  register files, data-BRAM images and profiler rankings.
* **Cache invalidation** — the decode cache and the superblock cache must
  drop stale translations when the dynamic partitioning module patches
  the executing binary mid-run (the bug surface the threaded engine
  enlarges: a stale superblock would keep executing the old loop header
  long after the branch-to-stub was written).
* **Semantics edges** — imm-prefix fusion, delay slots, execution budgets
  and the exact integer ``idiv``.
"""

from __future__ import annotations

import pytest

from repro.apps import build_suite, build_benchmark
from repro.compiler import compile_source
from repro.fabric.hw_exec import WclaPeripheral
from repro.isa import assemble
from repro.microblaze import (
    ExecutionLimitExceeded,
    MicroBlazeSystem,
    PAPER_CONFIG,
    MicroBlazeConfig,
    run_program,
)
from repro.microblaze.engine import signed_division
from repro.partition.binary_patch import apply_patch, patch_live_words, undo_patch
from repro.profiler.branch_cache import BranchFrequencyCache
from repro.profiler.profiler import OnChipProfiler
from repro.warp import WarpProcessor

DIVIDER_CONFIG = MicroBlazeConfig(use_barrel_shifter=True, use_multiplier=True,
                                  use_divider=True)


def run_both(program, config=PAPER_CONFIG, **kwargs):
    interp = run_program(program, config, engine="interp", **kwargs)
    threaded = run_program(program, config, engine="threaded", **kwargs)
    return interp, threaded


def assert_equivalent(interp, threaded):
    assert threaded.stats == interp.stats
    assert threaded.return_value == interp.return_value
    assert threaded.data_image == interp.data_image


# ---------------------------------------------------------------- differential
class TestDifferential:
    """Seed interpreter vs threaded engine, bit for bit."""

    @pytest.mark.parametrize("name",
                             [b.name for b in build_suite(small=True)])
    def test_suite_benchmark_bit_exact(self, name):
        benchmark = build_benchmark(name, small=True)
        program = compile_source(benchmark.source, name=name,
                                 config=PAPER_CONFIG).program

        systems = {}
        results = {}
        for engine in ("interp", "threaded"):
            system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
            results[engine] = system.run(program)
            systems[engine] = system

        assert_equivalent(results["interp"], results["threaded"])
        # Register files must match exactly, r0 through r31.
        assert systems["threaded"].cpu.registers == systems["interp"].cpu.registers
        # Full data-BRAM images (not just the returned prefix).
        assert bytes(systems["threaded"].data_bram.storage) \
            == bytes(systems["interp"].data_bram.storage)

    @pytest.mark.parametrize("name",
                             [b.name for b in build_suite(small=True)])
    def test_profiler_rankings_identical(self, name):
        benchmark = build_benchmark(name, small=True)
        program = compile_source(benchmark.source, name=name,
                                 config=PAPER_CONFIG).program
        profilers = {}
        for engine in ("interp", "threaded"):
            profiler = OnChipProfiler(BranchFrequencyCache(num_entries=16))
            run_program(program, PAPER_CONFIG, listeners=[profiler],
                        engine=engine)
            profilers[engine] = profiler
        a, b = profilers["interp"], profilers["threaded"]
        assert a.critical_regions() == b.critical_regions()
        assert (a.total_branches, a.backward_taken, a.instructions_observed) \
            == (b.total_branches, b.backward_taken, b.instructions_observed)

    def test_warp_flow_cycle_exact(self):
        benchmark = build_benchmark("brev", small=True)
        program = compile_source(benchmark.source, name="brev",
                                 config=PAPER_CONFIG).program
        results = {}
        for engine in ("interp", "threaded"):
            results[engine] = WarpProcessor(config=PAPER_CONFIG,
                                            engine=engine).run(program.copy())
        a, b = results["interp"], results["threaded"]
        assert a.software_result.stats == b.software_result.stats
        assert a.warp_mb_result.stats == b.warp_mb_result.stats
        assert a.hw_cycles == b.hw_cycles
        assert a.speedup == b.speedup


# ------------------------------------------------------------- semantics edges
class TestSemanticsEdges:
    def run_asm_both(self, source, config=PAPER_CONFIG):
        program = assemble(source)
        return run_both(program, config)

    def test_imm_prefix_fusion(self):
        interp, threaded = self.run_asm_both("""
            li r5, 0x12345678
            li r6, 0xFFFF0000
            add r3, r5, r6
            bri 0
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == (0x12345678 + 0xFFFF0000) & 0xFFFFFFFF

    def test_imm_prefixed_memory_access(self):
        interp, threaded = self.run_asm_both("""
            addi r5, r0, 77
            imm 0
            swi r5, r0, 512
            imm 0
            lwi r3, r0, 512
            bri 0
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 77

    def test_delay_slot_cycle_accounting(self):
        # The interpreter charges a delay slot's cycles both to the slot's
        # class and to the branch; the threaded engine must reproduce that.
        interp, threaded = self.run_asm_both("""
            .entry main
        sub:
            add r3, r5, r5
            rtsd r15, 8
            addi r3, r3, 1      # delay slot executes after the return issues
        main:
            addi r5, r0, 4
            brlid r15, sub
            addi r5, r5, 1      # delay slot of the call
            bri 0
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 11  # (4 + 1) * 2 + 1

    def test_conditional_delay_slot_runs_when_not_taken(self):
        interp, threaded = self.run_asm_both("""
            addi r5, r0, 0
            beqid r5, target
            addi r3, r3, 5      # slot runs whether or not the branch is taken
        target:
            bneid r5, elsewhere
            addi r3, r3, 7      # not taken: slot still runs
            bri 0
        elsewhere:
            bri 0
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 12

    def test_imm_latch_survives_into_delay_slot(self):
        # The interpreter clears the imm latch only once the whole branch —
        # delay slot included — has executed, so a prefix before a delayed
        # branch fuses into the slot's immediate too.  The threaded engine
        # must reproduce that (it compiles the slot with the branch's
        # pending prefix).
        interp, threaded = self.run_asm_both("""
            addi r5, r0, 0
            addi r6, r0, 8      # register-form branch offset: pc+8
            imm 1
            beqd r5, r6         # taken; the latch stays set for the slot
            addi r4, r0, 1      # slot sees the latch: r4 = 0x10001
            add r3, r4, r0      # branch target (pc + 8)
            bri 0
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 0x10001

    def test_fetch_past_bram_end_faults_after_block_executes(self):
        # Straight-line code running off the end of the instruction BRAM:
        # the interpreter executes the block's instructions (including the
        # store) before the out-of-range fetch faults; the threaded engine
        # must not fault earlier, at block-compile time.
        from repro.microblaze import MemoryError_

        program = assemble("""
            addi r5, r0, 7
            swi r5, r0, 0
        """)
        images = {}
        for engine in ("interp", "threaded"):
            config = MicroBlazeConfig(instr_bram_kb=1, data_bram_kb=1)
            system = MicroBlazeSystem(config=config, engine=engine)
            # Place the two instructions at the very end of the BRAM.
            base = system.instr_bram.size - 4 * len(program.text)
            system.instr_bram.store_words(base, program.text)
            system._loaded_program = program
            system.cpu.reset(entry_point=base)
            with pytest.raises(MemoryError_):
                system.cpu.run()
            images[engine] = (bytes(system.data_bram.storage),
                             system.cpu.stats)
        assert images["threaded"] == images["interp"]
        assert images["threaded"][0][0] == 7  # the store did execute

    def test_register_indirect_branch_halt(self):
        # A register-form branch to its own address is the halt idiom too,
        # and the threaded engine must detect it dynamically.
        interp, threaded = self.run_asm_both("""
            addi r3, r0, 9
            addi r5, r0, 0
            br r5               # target == pc: dynamic self-branch halt
        """)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 9

    def test_execution_budget_raises_at_same_instruction(self):
        source = """
            addi r5, r0, 100
        loop:
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """
        program = assemble(source)
        for budget in (1, 2, 3, 50, 101):
            stats = {}
            for engine in ("interp", "threaded"):
                system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
                system.load(program)
                system.cpu.reset(entry_point=program.entry_point)
                with pytest.raises(ExecutionLimitExceeded):
                    system.cpu.run(max_instructions=budget)
                stats[engine] = system.cpu.stats
            assert stats["threaded"] == stats["interp"]

    def test_idiv_exact_integer_semantics(self):
        # Truncation toward zero, zero divisor, and INT_MIN / -1 overflow.
        assert signed_division(7, 2) == 3
        assert signed_division(-7, 2) == (-3) & 0xFFFFFFFF
        assert signed_division(7, -2) == (-3) & 0xFFFFFFFF
        assert signed_division(-7, -2) == 3
        assert signed_division(123, 0) == 0
        assert signed_division(-0x8000_0000, -1) == 0x8000_0000
        assert signed_division(0x7FFF_FFFF, 1) == 0x7FFF_FFFF

    def test_idiv_instruction_differential(self):
        interp, threaded = self.run_asm_both("""
            li r5, -2147483648
            addi r6, r0, -1
            idiv r3, r6, r5     # rd = rb / ra = INT_MIN / -1
            bri 0
        """, config=DIVIDER_CONFIG)
        assert_equivalent(interp, threaded)
        assert threaded.return_value == 0x8000_0000


# ------------------------------------------------------------ cache invalidation
class TestCacheInvalidation:
    LOOP = """
        addi r5, r0, 10
        addi r3, r0, 0
    loop:
        addi r3, r3, 1
        addi r5, r5, -1
        bnei r5, loop
        bri 0
    """

    def _warm_system(self, engine):
        """Load the loop and stop it mid-run with warm translation caches."""
        program = assemble(self.LOOP)
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
        system.load(program)
        system.cpu.reset(entry_point=program.entry_point)
        with pytest.raises(ExecutionLimitExceeded):
            system.cpu.run(max_instructions=8)  # a couple of iterations in
        return system, program

    @pytest.mark.parametrize("engine", ["interp", "threaded"])
    def test_mid_run_word_patch_takes_effect(self, engine):
        system, program = self._warm_system(engine)
        if engine == "threaded":
            assert system.cpu._blocks, "superblocks should be warm"
        # Patch the loop body: increment by 16 instead of 1.
        patched = assemble(self.LOOP.replace("addi r3, r3, 1",
                                             "addi r3, r3, 16"))
        address = 8  # byte address of the first loop-body instruction
        patch_live_words(system, address, [patched.text[address // 4]])
        stats = system.cpu.run()
        # Iterations executed after the patch add 16 each.
        executed_before = 2  # two increments before the 8-instruction budget
        expected = executed_before * 1 + (10 - executed_before) * 16
        assert system.cpu.read_register(3) == expected

    @pytest.mark.parametrize("engine", ["interp", "threaded"])
    def test_stale_translation_without_invalidation(self, engine):
        # Writing the BRAM behind the caches' back is the documented bug
        # surface: both the decode cache and the superblock cache keep
        # serving the old translation.  This pins the contract that makes
        # explicit invalidation necessary.
        system, program = self._warm_system(engine)
        patched = assemble(self.LOOP.replace("addi r3, r3, 1",
                                             "addi r3, r3, 16"))
        system.instr_bram.store_words(8, [patched.text[2]])  # no invalidate
        system.cpu.run()
        assert system.cpu.read_register(3) == 10  # stale +1 per iteration

    def test_selective_invalidation_drops_only_covering_blocks(self):
        system, program = self._warm_system("threaded")
        cpu = system.cpu
        blocks_before = dict(cpu._blocks)
        assert blocks_before
        # Invalidate an address inside the loop body: every block whose
        # compiled range covers it must go; others must survive.
        cpu.invalidate_decode_cache(8)
        for entry, block in blocks_before.items():
            if block[4] <= 8 <= block[5]:
                assert entry not in cpu._blocks
            else:
                assert entry in cpu._blocks
        assert 8 not in cpu._decoded

    @pytest.mark.parametrize("engine", ["interp", "threaded"])
    def test_mid_run_dpm_patch_and_superblock_invalidation(self, engine):
        """The full Section 3 story, mid-flight: profile, partition, then
        patch the *executing* binary and let the run finish on the WCLA."""
        benchmark = build_benchmark("canrdr", small=True)
        program = compile_source(benchmark.source, name="canrdr",
                                 config=PAPER_CONFIG).program
        warp = WarpProcessor(config=PAPER_CONFIG, engine=engine)
        software, profiler = warp.profile(program)
        outcome = warp.dpm.partition(program.copy(),
                                     profiler.most_critical_region())
        assert outcome.success

        live = program.copy()
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
        system.load(live)
        peripheral = WclaPeripheral(warp.wcla_base_address,
                                    outcome.implementation, system.data_bram)
        system.attach_peripheral(peripheral)
        cpu = system.cpu
        cpu.reset(entry_point=live.entry_point)
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run(max_instructions=software.instructions // 2)

        apply_patch(live, outcome.kernel, wcla_base=warp.wcla_base_address,
                    system=system)
        stats = cpu.run()
        # The patched binary must ship the remaining loop work to hardware
        # and still produce the software run's checksum.
        assert cpu.read_register(3) == software.return_value
        assert peripheral.invocations >= 1
        assert stats.instructions < software.instructions

    def test_live_undo_restores_software_execution(self):
        benchmark = build_benchmark("canrdr", small=True)
        program = compile_source(benchmark.source, name="canrdr",
                                 config=PAPER_CONFIG).program
        warp = WarpProcessor(config=PAPER_CONFIG)
        software, profiler = warp.profile(program)
        outcome = warp.dpm.partition(program.copy(),
                                     profiler.most_critical_region())
        assert outcome.success

        live = program.copy()
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        system.load(live)
        peripheral = WclaPeripheral(warp.wcla_base_address,
                                    outcome.implementation, system.data_bram)
        system.attach_peripheral(peripheral)
        cpu = system.cpu
        cpu.reset(entry_point=live.entry_point)

        patch = apply_patch(live, outcome.kernel,
                            wcla_base=warp.wcla_base_address, system=system)
        undo_patch(live, patch, system=system)
        assert live.text == program.text
        stats = cpu.run()
        assert cpu.read_register(3) == software.return_value
        assert peripheral.invocations == 0
        assert stats.instructions == software.instructions
