"""Edge-case tests: software runtime routines, IR printing, patches, reports."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source, lower_to_ir, parse
from repro.compiler.runtime import available_routines
from repro.isa import decode, disassemble, listing
from repro.microblaze import MINIMAL_CONFIG, PAPER_CONFIG, run_program


def run_main(source: str, config=MINIMAL_CONFIG) -> int:
    result = compile_source(source, name="edge", config=config)
    return run_program(result.program, config).return_value


def signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


class TestSoftwareRuntimeRoutines:
    """The __mulsi3 / __divsi3 / __modsi3 / __ashl / __ashr library."""

    def test_all_routines_available(self):
        assert {"__mulsi3", "__divsi3", "__modsi3", "__ashl", "__ashr"} \
            <= available_routines()

    @pytest.mark.parametrize("a,b", [(0, 5), (5, 0), (-1, -1), (123456, 7),
                                     (-50000, 31), (7, -9), (65535, 65535)])
    def test_soft_multiply_cases(self, a, b):
        value = run_main(f"int main() {{ int a = {a}; int b = {b}; return a * b; }}")
        assert value == (a * b) & 0xFFFFFFFF

    @pytest.mark.parametrize("a,b", [(100, 7), (-100, 7), (100, -7), (-100, -7),
                                     (7, 100), (0, 3), (5, 0), (1 << 30, 3)])
    def test_soft_divide_cases(self, a, b):
        value = run_main(f"int main() {{ int a = {a}; int b = {b}; return a / b; }}")
        expected = 0 if b == 0 else int(a / b)
        assert signed(value) == expected

    @pytest.mark.parametrize("a,b", [(100, 7), (-100, 7), (100, -7), (17, 17), (3, 10)])
    def test_soft_modulo_cases(self, a, b):
        value = run_main(f"int main() {{ int a = {a}; int b = {b}; return a % b; }}")
        expected = a - int(a / b) * b
        assert signed(value) == expected

    @given(a=st.integers(-10**6, 10**6), b=st.integers(1, 10**4))
    @settings(max_examples=10, deadline=None)
    def test_divide_property(self, a, b):
        value = run_main(f"int main() {{ int a = {a}; int b = {b}; return a / b; }}")
        assert signed(value) == int(a / b)


class TestIrAndDiagnostics:
    def test_ir_is_printable(self):
        module = lower_to_ir(parse("""
        int data[4];
        int main() { int i; for (i = 0; i < 4; i = i + 1) { data[i] = i * 3; } return data[2]; }
        """))
        text = str(module)
        assert "function main" in text
        assert "goto" in text

    def test_disassembler_matches_assembly(self):
        result = compile_source("int main() { return 5 + 6; }", config=PAPER_CONFIG)
        instructions = disassemble(result.program.text)
        assert len(instructions) == result.program.num_instructions
        assert "main" in listing(result.program)

    def test_compilation_result_metadata(self):
        result = compile_source("int main() { return 1; }", config=PAPER_CONFIG)
        assert result.name == "program"
        assert result.config is PAPER_CONFIG
        assert result.assembly.startswith(".text")


class TestPatchRobustness:
    def test_scratch_register_liveins_rejected(self, compiled_small_programs):
        from repro.decompile import decompile_and_extract
        from repro.partition import PatchError, apply_patch
        from repro.profiler import OnChipProfiler

        program = compiled_small_programs["g3fax"].copy()
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, listeners=[profiler])
        kernel = decompile_and_extract(program.text, profiler.most_critical_region())
        # Forcibly claim a scratch register is live-in: the patcher must refuse.
        object.__setattr__(kernel, "live_in_registers",
                           tuple(kernel.live_in_registers) + (18,))
        with pytest.raises(PatchError):
            apply_patch(program, kernel)

    def test_patched_program_is_larger_and_decodable(self, warp_small_results,
                                                     compiled_small_programs):
        result = warp_small_results["bitmnp"]
        stub_words = result.partitioning.patch.stub_words
        for word in stub_words:
            decode(word)  # every stub word must be a valid instruction
        assert result.partitioning.patch.stub_address == \
            4 * len(compiled_small_programs["bitmnp"].text)
