"""The networked warp service: wire protocol, disk store, gateway, remote
worker backend, and the server-side CLI verbs."""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import socket
import time

import pytest

from repro.cad import (
    CadArtifactCache,
    CapacityRejection,
    SOURCE_DISK,
    is_negative_artifact,
)
from repro.cad.keys import content_digest
from repro.digest import digest_int, sha256_hex, shard_index
from repro.fabric.architecture import FabricParameters, WclaParameters
from repro.microblaze import PAPER_CONFIG
from repro.server import (
    DiskArtifactStore,
    DiskStoreError,
    DiskStoreSchemaError,
    GatewayBusyError,
    GatewayClient,
    GatewayDrainingError,
    GatewayMesh,
    HandshakeError,
    HashRing,
    MeshBackend,
    ProtocolError,
    RemoteError,
    RemoteWorkerBackend,
    STORE_MAGIC,
    STORE_SCHEMA_VERSION,
    WarpGateway,
    close_pooled_clients,
    start_gateway_thread,
)
from repro.server import protocol
from repro.service import ServiceReport, WarpJob, WarpService, execute_job
from repro.service.cli import load_job_file, main
from repro.service.jobs import ServiceResult
from repro.service.scheduler import JobScheduler, aged_priority

from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: Result fields that must be byte-identical between a remote and an
#: in-process execution of the same job (host wall times excluded).
DETERMINISTIC_FIELDS = (
    "job_name", "workload", "config_label", "ok", "error", "partitioned",
    "partition_reason", "checksum_ok", "speedup", "software_ms", "warp_ms",
    "dpm_ms", "mb_energy_mj", "warp_energy_mj", "normalized_warp_energy",
    "cad_cache_hit", "cache_hits", "cache_misses", "stage_cache",
    "deduped_from",
)


def _small_jobs():
    return [
        WarpJob(name="brev-s", benchmark="brev", small=True, priority=2),
        WarpJob(name="brev-s-twin", benchmark="brev", small=True),
        WarpJob(name="idct-greedy", benchmark="idct", small=True,
                stages=("decompile", "synthesis", "place", "route-greedy",
                        "implement", "binary-update")),
    ]


def _assert_results_identical(remote, local):
    assert [r.job_name for r in remote] == [r.job_name for r in local]
    for a, b in zip(remote, local):
        for field in DETERMINISTIC_FIELDS:
            assert getattr(a, field) == getattr(b, field), \
                f"{a.job_name}: {field}"
        assert set(a.stage_wall_ms) == set(b.stage_wall_ms), a.job_name


def _slow_worker(job):
    """Backend that holds the admission queue occupied long enough for a
    deterministic busy-rejection window."""
    time.sleep(0.4)
    return execute_job(job)


@contextlib.contextmanager
def running_gateway(**kwargs):
    """A gateway on a daemon thread, bound to an ephemeral port, torn down
    (and its pooled client connections dropped) on exit."""
    kwargs.setdefault("port", 0)
    gateway = WarpGateway(**kwargs)
    thread = start_gateway_thread(gateway)
    try:
        yield gateway
    finally:
        gateway.request_stop()
        thread.join(timeout=30)
        close_pooled_clients()


# --------------------------------------------------------------------------- digests
class TestDigestHelpers:
    def test_sha256_hex_is_the_cad_content_digest(self):
        """Satellite: one digest implementation everywhere — the CAD key
        helper is an alias, byte-for-byte (existing digests stay valid)."""
        import hashlib

        parts = ("bundle", "v1\nupdate r3 0", "WclaParameters(...)")
        reference = hashlib.sha256()
        for part in parts:
            reference.update(part.encode())
            reference.update(b"\x00")
        assert sha256_hex(*parts) == reference.hexdigest()
        assert content_digest(*parts) == sha256_hex(*parts)

    def test_shard_index_matches_the_seed_routing_formula(self):
        """Pool shard routing must not change across the refactor: same
        digest (first 8 bytes, big-endian) mod shard count."""
        import hashlib

        job = WarpJob(name="j", benchmark="brev", small=True)
        text = repr(job.dedup_key())
        expected = int.from_bytes(
            hashlib.sha256(text.encode()).digest()[:8], "big")
        assert digest_int(text) == expected
        for shards in (1, 2, 3, 7):
            assert shard_index(text, shards) == expected % shards
        service = WarpService(workers=4)
        assert service._shard_index(job) == expected % 4

    def test_shard_index_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            shard_index("x", 0)


# --------------------------------------------------------------------------- protocol
class TestWireProtocol:
    def test_frame_roundtrip_over_a_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"verb": "status", "batch_id": "batch-1",
                       "nested": {"x": [1, 2, 3]}}
            protocol.send_frame(a, payload)
            assert protocol.recv_frame(b) == payload
            a.close()
            assert protocol.recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_oversized_frame_length_is_rejected_not_allocated(self):
        a, b = socket.socketpair()
        try:
            a.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            a.close()
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_mid_frame_eof_is_an_error_not_none(self):
        a, b = socket.socketpair()
        try:
            frame = protocol.encode_frame({"verb": "status"})
            a.sendall(frame[:-3])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_non_object_body_is_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_body(b"[1, 2, 3]")

    def test_handshake_version_mismatch_is_a_typed_error(self):
        with pytest.raises(HandshakeError, match="version"):
            protocol.check_hello({"magic": protocol.PROTOCOL_MAGIC,
                                  "version": protocol.PROTOCOL_VERSION + 1})
        with pytest.raises(HandshakeError, match="WARPNET"):
            protocol.check_hello({"magic": "HTTP/1.1", "version": 1})
        with pytest.raises(HandshakeError, match="closed"):
            protocol.check_hello(None)

    def test_job_codec_preserves_content_identity(self):
        """A job survives the wire with its dedup key (and therefore its
        CAD cache addresses) intact — config, WCLA and stages included."""
        import dataclasses

        job = WarpJob(
            name="wire", benchmark="idct", small=True,
            config=dataclasses.replace(PAPER_CONFIG, use_multiplier=False),
            config_label="no-mul",
            wcla=WclaParameters(fabric=FabricParameters(channel_width=6),
                                num_registers=4),
            engine="interp", max_instructions=123_456, priority=7,
            stages=("decompile", "synthesis", "place", "route-greedy",
                    "implement", "binary-update"),
        )
        clone = protocol.job_from_plain(
            json.loads(json.dumps(protocol.job_to_plain(job))))
        assert clone.dedup_key() == job.dedup_key()
        assert clone.name == job.name and clone.priority == job.priority
        assert clone.config == job.config and clone.wcla == job.wcla

    def test_result_and_report_roundtrip(self):
        result = ServiceResult(job_name="j", workload="brev",
                               config_label="paper", engine="threaded",
                               speedup=2.5, cache_disk_hits=3,
                               stage_cache={"synthesis": "disk-hit"})
        report = ServiceReport(results=[result], wall_seconds=1.25,
                               mode="serial", workers=0)
        clone = ServiceReport.from_plain(
            json.loads(json.dumps(report.to_plain())))
        assert clone.results[0] == result
        assert clone.mode == "serial" and clone.wall_seconds == 1.25
        assert clone.cache_disk_hits == 3


# --------------------------------------------------------------------------- disk store
class TestDiskArtifactStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = DiskArtifactStore(tmp_path / "store")
        assert store.stage_get("synthesis", "a" * 8) is None
        store.stage_put("synthesis", "a" * 8, {"luts": 12})
        assert store.stage_get("synthesis", "a" * 8) == {"luts": 12}
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["writes"] == 1 and stats["entries"] == 1
        assert stats["schema"] == STORE_SCHEMA_VERSION

    def test_entries_survive_a_new_instance(self, tmp_path):
        DiskArtifactStore(tmp_path).stage_put("place", "k1", (1, 2, 3))
        assert DiskArtifactStore(tmp_path).stage_get("place", "k1") == (1, 2, 3)

    def test_capacity_rejections_persist(self, tmp_path):
        DiskArtifactStore(tmp_path).stage_put(
            "place", "k", CapacityRejection(message="too big"))
        value = DiskArtifactStore(tmp_path).stage_get("place", "k")
        assert isinstance(value, CapacityRejection)
        assert is_negative_artifact(value)

    def test_mtime_lru_eviction_is_size_bounded(self, tmp_path):
        store = DiskArtifactStore(tmp_path, max_bytes=None)
        for index in range(4):
            store.stage_put("route", f"key{index}", b"x" * 64)
        # Age the first two entries explicitly (mtime is the LRU clock).
        now = time.time()
        for index, age in ((0, 1000), (1, 500)):
            path = store._entry_path("route", f"key{index}")
            os.utime(path, (now - age, now - age))
        store.max_bytes = store.size_bytes() - 1  # force eviction of >= 1
        store.stage_put("route", "key4", b"x" * 64)
        assert store.stage_get("route", "key0") is None  # oldest went first
        assert store.stage_get("route", "key4") == b"x" * 64
        assert store.evictions >= 1
        assert store.size_bytes() <= store.max_bytes

    def test_unknown_entry_schema_version_is_rejected_loudly(self, tmp_path):
        """Satellite: a stale on-disk format must raise a clear error that
        names both versions — never decode garbage, never silently miss."""
        store = DiskArtifactStore(tmp_path)
        store.stage_put("synthesis", "k", {"x": 1})
        path = store._entry_path("synthesis", "k")
        blob = path.read_bytes()
        path.write_bytes(STORE_MAGIC + (999).to_bytes(2, "big")
                         + blob[len(STORE_MAGIC) + 2:])
        with pytest.raises(DiskStoreSchemaError) as excinfo:
            store.stage_get("synthesis", "k")
        assert "999" in str(excinfo.value)
        assert str(STORE_SCHEMA_VERSION) in str(excinfo.value)

    def test_bad_magic_and_corrupt_payload_are_loud(self, tmp_path):
        """With quarantine disabled, corruption is a loud typed error —
        the pre-quarantine contract is still available for debugging."""
        store = DiskArtifactStore(tmp_path, quarantine_corrupt=False)
        path = store._entry_path("route", "bad")
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(DiskStoreError, match="magic"):
            store.stage_get("route", "bad")
        path.write_bytes(STORE_MAGIC
                         + STORE_SCHEMA_VERSION.to_bytes(2, "big")
                         + b"truncated-not-zlib")
        with pytest.raises(DiskStoreError, match="corrupt"):
            store.stage_get("route", "bad")

    def test_corrupt_entry_is_quarantined_by_default(self, tmp_path):
        """Default stores treat corruption as a cache miss: the entry is
        moved aside (never deleted — it is evidence), counted, and the
        caller recomputes.  Schema mismatches stay loud either way."""
        store = DiskArtifactStore(tmp_path)
        store.stage_put("route", "bad", {"x": 1})
        path = store._entry_path("route", "bad")
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # torn write
        assert store.stage_get("route", "bad") is None
        assert store.corrupt_entries == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantine").exists()
        # The slot is reusable after recompute.
        store.stage_put("route", "bad", {"x": 1})
        assert store.stage_get("route", "bad") == {"x": 1}

    def test_zero_length_entry_is_tolerated(self, tmp_path):
        """Satellite: a crash between open and write leaves a zero-length
        file; it must read as a miss, not an exception."""
        store = DiskArtifactStore(tmp_path)
        store._entry_path("route", "empty").write_bytes(b"")
        assert store.stage_get("route", "empty") is None
        assert store.corrupt_entries == 1

    def test_orphan_tmp_files_are_collected_at_open(self, tmp_path):
        """Satellite: ``*.tmp`` droppings from a crashed publisher are
        swept at open once old enough; fresh ones are left alone (their
        writer may still be mid-publish)."""
        import os
        store = DiskArtifactStore(tmp_path)
        stale = tmp_path / ".stale-entry.tmp"
        stale.write_bytes(b"partial")
        old_time = time.time() - 7200
        os.utime(stale, (old_time, old_time))
        fresh = tmp_path / ".fresh-entry.tmp"
        fresh.write_bytes(b"partial")
        reopened = DiskArtifactStore(tmp_path)
        assert not stale.exists()
        assert fresh.exists()
        assert reopened.orphan_tmp_removed == 1

    def test_store_level_schema_marker_is_checked_at_open(self, tmp_path):
        DiskArtifactStore(tmp_path)  # writes the marker
        (tmp_path / "WARPDISK.schema").write_text("999\n")
        with pytest.raises(DiskStoreSchemaError, match="999"):
            DiskArtifactStore(tmp_path)

    def test_clear_drops_entries_but_keeps_the_marker(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.stage_put("route", "k", 1)
        store.clear()
        assert len(store) == 0
        assert (tmp_path / "WARPDISK.schema").exists()
        DiskArtifactStore(tmp_path)  # still opens cleanly


# ----------------------------------------------------------------- cache disk tier
class TestCacheDiskTier:
    def test_fresh_process_cache_warms_from_disk(self, tmp_path):
        """A second *run* (fresh in-memory cache, same store directory) is
        served by the disk tier, counted separately from memory hits."""
        job = WarpJob(name="j", benchmark="brev", small=True)
        cold = execute_job(job, CadArtifactCache(
            store=DiskArtifactStore(tmp_path)))
        assert cold.partitioned and cold.cache_disk_hits == 0

        warm_cache = CadArtifactCache(store=DiskArtifactStore(tmp_path))
        warm = execute_job(job, warm_cache)
        assert warm.partitioned
        assert warm.speedup == cold.speedup
        assert warm.cad_cache_hit
        bundled = [stage for stage, source in warm.stage_cache.items()
                   if source != "uncached"]
        assert bundled and all(warm.stage_cache[s] == SOURCE_DISK
                               for s in bundled)
        assert warm.cache_disk_hits == len(bundled)
        # Counted separately: no *memory* stage hits happened at all.
        assert warm_cache.disk_hits == len(bundled)
        assert all(hits == 0 for hits, _ in
                   warm_cache.stage_counters().values())
        assert warm_cache.stats()["disk_hits"] == len(bundled)
        assert warm_cache.stats()["store"]["hits"] == len(bundled)

    def test_report_aggregates_disk_hits(self, tmp_path):
        job = WarpJob(name="j", benchmark="brev", small=True)
        execute_job(job, CadArtifactCache(store=DiskArtifactStore(tmp_path)))
        warm = execute_job(job, CadArtifactCache(
            store=DiskArtifactStore(tmp_path)))
        report = ServiceReport(results=[warm])
        assert report.cache_disk_hits == warm.cache_disk_hits > 0
        plain = report.to_plain()
        assert plain["cache"]["disk_hits"] == warm.cache_disk_hits
        assert plain["stages"]["synthesis"]["disk_hits"] == 1
        assert plain["stages"]["synthesis"]["hits"] == 1  # disk is a hit too

    def test_memory_tier_still_wins_when_warm(self, tmp_path):
        cache = CadArtifactCache(store=DiskArtifactStore(tmp_path),
                                 bundle_fast_path=False)
        job = WarpJob(name="j", benchmark="brev", small=True)
        execute_job(job, cache)
        second = execute_job(job, cache)
        assert second.cache_disk_hits == 0  # served from memory
        assert all(source in ("hit", "uncached")
                   for source in second.stage_cache.values())


# --------------------------------------------------------------------------- gateway
class TestGateway:
    def test_remote_submission_equals_in_process_execution(self):
        """Acceptance: a suite run over localhost produces ServiceResults
        identical to the serial in-process path (deterministic fields:
        speedup/energy/modelled times/stage tables)."""
        jobs = _small_jobs()
        with running_gateway(service=WarpService(
                workers=0, artifact_cache=CadArtifactCache())) as gateway:
            with GatewayClient(gateway.address) as client:
                remote = client.submit(jobs)
        local = WarpService(workers=0,
                            artifact_cache=CadArtifactCache()).run(jobs)
        assert remote.num_failed == 0
        _assert_results_identical(remote.results, local.results)
        # Dedup happened on the gateway exactly as it does locally.
        twin = {r.job_name: r for r in remote.results}["brev-s-twin"]
        assert twin.deduped_from == "brev-s"

    def test_status_stream_and_cache_stats(self):
        jobs = [WarpJob(name="brev-s", benchmark="brev", small=True)]
        with running_gateway() as gateway:
            with GatewayClient(gateway.address) as client:
                batch_id = client.submit(jobs, wait=False)
                deadline = time.time() + 120
                while True:
                    status = client.status(batch_id)
                    if status["state"] == "done":
                        break
                    assert time.time() < deadline, status
                    time.sleep(0.05)
                assert isinstance(status["report"], ServiceReport)
                streamed = list(client.stream_results(batch_id))
                assert [r.job_name for r in streamed] == ["brev-s"]
                assert streamed[0] == status["report"].results[0]
                stats = client.cache_stats()
                assert stats["queue_limit"] > 0
                assert stats["batches"][batch_id] == "done"
                assert "hits" in stats["cache"]

    def test_admission_limit_yields_typed_rejection(self):
        """Acceptance: submitting past the admission limit yields a typed
        429-style rejection on the client — not a hang or a crash."""
        slow_service = WarpService(workers=0, worker_fn=_slow_worker)
        with running_gateway(queue_limit=2, service=slow_service) as gateway:
            with GatewayClient(gateway.address) as client:
                # Fill the queue, then submit into the full queue while
                # the first batch is still pending.
                batch_id = client.submit(
                    [WarpJob(name=f"q{i}", benchmark="brev", small=True)
                     for i in range(2)], wait=False)
                with pytest.raises(GatewayBusyError) as excinfo:
                    client.submit([WarpJob(name="late", benchmark="brev",
                                           small=True)])
                assert excinfo.value.queue_limit == 2
                assert excinfo.value.pending_jobs == 2
                # The busy reply carries the live queue shape so clients
                # can scale their backoff by occupancy.
                assert excinfo.value.queue_depth == 2
                assert excinfo.value.occupancy() == 1.0
                # Once the queue drains, the same submission is admitted:
                # busy is transient, and the gateway survived it.
                while client.status(batch_id)["state"] != "done":
                    time.sleep(0.05)
                report = client.submit([WarpJob(name="late", benchmark="brev",
                                                small=True)])
                assert report.num_failed == 0

    def test_graceful_drain_finishes_admitted_work(self):
        """The shutdown verb drains: in-flight batches run to completion
        and stay observable, while new submissions get the typed (and
        unlike busy, non-retryable) draining rejection."""
        slow_service = WarpService(workers=0, worker_fn=_slow_worker)
        with running_gateway(service=slow_service) as gateway:
            with GatewayClient(gateway.address) as client:
                batch_id = client.submit(
                    [WarpJob(name="inflight", benchmark="brev", small=True)],
                    wait=False)
                client.shutdown()  # acknowledged while work is pending;
                #                    the shutdown verb ends its connection
            with GatewayClient(gateway.address) as client:
                with pytest.raises(GatewayDrainingError, match="draining"):
                    client.submit([WarpJob(name="late", benchmark="brev",
                                           small=True)])
                # The admitted batch still completes and streams out.
                results = list(client.stream_results(batch_id))
                assert [r.job_name for r in results] == ["inflight"]
                assert results[0].ok

    def test_oversized_batches_are_rejected_as_unretryable(self):
        """A batch that can never fit is not `busy` (retrying would loop
        forever) but a distinct batch-too-large error."""
        with running_gateway(queue_limit=2) as gateway:
            with GatewayClient(gateway.address) as client:
                with pytest.raises(RemoteError, match="batch-too-large"):
                    client.submit([WarpJob(name=f"j{i}", benchmark="brev",
                                           small=True) for i in range(3)])

    def test_finished_batches_are_pruned_beyond_retention(self):
        """A long-running gateway must not retain batch history without
        bound: the oldest finished batches fall off."""
        with running_gateway(retained_batches=2) as gateway:
            with GatewayClient(gateway.address) as client:
                for index in range(4):
                    client.submit([WarpJob(name=f"j{index}",
                                           benchmark="brev", small=True)])
                stats = client.cache_stats()
                assert len(stats["batches"]) <= 2
                # The newest batch is still queryable, the oldest is gone.
                assert client.status("batch-4")["state"] == "done"
                with pytest.raises(RemoteError, match="unknown-batch"):
                    client.status("batch-1")

    def test_unknown_verb_and_unknown_batch_are_remote_errors(self):
        with running_gateway() as gateway:
            with GatewayClient(gateway.address) as client:
                with pytest.raises(RemoteError, match="unknown-verb"):
                    client._round_trip({"verb": "frobnicate"})
                with pytest.raises(RemoteError, match="unknown-batch"):
                    client.status("batch-999")

    def test_gateway_rejects_foreign_protocol_versions(self):
        with running_gateway() as gateway:
            with socket.create_connection(("127.0.0.1", gateway.port),
                                          timeout=30) as sock:
                protocol.send_frame(sock, {"magic": protocol.PROTOCOL_MAGIC,
                                           "version": 999})
                reply = protocol.recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"] == "version-mismatch"
            # A well-versioned client still connects afterwards.
            with GatewayClient(gateway.address) as client:
                assert client.cache_stats()["ok"]

    def test_malformed_jobs_are_a_bad_jobs_error(self):
        with running_gateway() as gateway:
            with GatewayClient(gateway.address) as client:
                with pytest.raises(RemoteError, match="bad-jobs"):
                    client._round_trip({"verb": "submit", "jobs": []})

    def test_abandoned_stream_leaves_the_connection_usable(self):
        """Breaking out of stream_results mid-iteration must not leave
        unread frames that desynchronize later verbs."""
        jobs = [WarpJob(name=f"j{i}", benchmark="brev", small=True)
                for i in range(3)]
        with running_gateway() as gateway:
            with GatewayClient(gateway.address) as client:
                client.submit(jobs)  # warm: the streamed batch is instant
                batch_id = client.submit([WarpJob(name="s0",
                                                  benchmark="brev",
                                                  small=True),
                                          WarpJob(name="s1",
                                                  benchmark="idct",
                                                  small=True)],
                                         wait=False)
                while client.status(batch_id)["state"] != "done":
                    time.sleep(0.05)
                for result in client.stream_results(batch_id):
                    break  # abandon after the first frame
                # The connection is still frame-aligned.
                stats = client.cache_stats()
                assert stats["ok"] and "cache" in stats


# ------------------------------------------------------------------ remote backend
class TestRemoteWorkerBackend:
    def test_serial_service_over_the_backend_is_identical(self):
        """Acceptance: WarpService(worker_fn=RemoteWorkerBackend) over
        localhost == the serial in-process path, result for result."""
        jobs = _small_jobs()
        with running_gateway(service=WarpService(
                workers=0, artifact_cache=CadArtifactCache())) as gateway:
            backend = RemoteWorkerBackend([gateway.address])
            remote = WarpService(workers=0, worker_fn=backend).run(jobs)
        local = WarpService(workers=0,
                            artifact_cache=CadArtifactCache()).run(jobs)
        assert remote.num_failed == 0
        assert remote.mode == "serial"
        _assert_results_identical(remote.results, local.results)

    def test_pooled_fan_out_across_two_gateways(self):
        """workers=len(gateways): each local relay shard ships its content
        partition to 'its' gateway; numbers match the serial path."""
        jobs = [WarpJob(name="brev-s", benchmark="brev", small=True),
                WarpJob(name="idct-s", benchmark="idct", small=True),
                WarpJob(name="matmul-s", benchmark="matmul", small=True)]
        with contextlib.ExitStack() as stack:
            gateways = [
                stack.enter_context(running_gateway(service=WarpService(
                    workers=0, artifact_cache=CadArtifactCache())))
                for _ in range(2)
            ]
            backend = RemoteWorkerBackend([gw.address for gw in gateways])
            with WarpService(workers=2, worker_fn=backend) as service:
                remote = service.run(jobs)
        local = WarpService(workers=0,
                            artifact_cache=CadArtifactCache()).run(jobs)
        assert remote.num_failed == 0 and remote.mode == "pool"
        _assert_results_identical(remote.results, local.results)

    def test_routing_is_stable_across_pickling(self):
        backend = RemoteWorkerBackend([("127.0.0.1", 1), ("127.0.0.1", 2),
                                       ("127.0.0.1", 3)])
        clone = pickle.loads(pickle.dumps(backend))
        for job in _small_jobs():
            assert backend.address_for(job) == clone.address_for(job)

    def test_dead_gateway_becomes_a_failed_result_not_a_crash(self):
        # Bind-then-close guarantees a port nothing listens on.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        backend = RemoteWorkerBackend([("127.0.0.1", dead_port)],
                                      timeout=5.0)
        result = backend(WarpJob(name="j", benchmark="brev", small=True))
        assert not result.ok
        assert "remote gateway" in result.error

    def test_backend_busy_rejection_is_reported_as_itself(self):
        """A typed busy rejection surfacing through the backend seam must
        not be mislabeled as a worker death."""
        def busy_backend(job):
            raise GatewayBusyError("admission queue is full",
                                   pending_jobs=9, queue_limit=9)

        report = WarpService(workers=0, worker_fn=busy_backend).run(
            [WarpJob(name="j", benchmark="brev", small=True)])
        result = report.results[0]
        assert not result.ok
        assert "GatewayBusyError" in result.error
        assert "admission queue is full" in result.error
        assert "died" not in result.error

    def test_backend_requires_addresses(self):
        with pytest.raises(ValueError):
            RemoteWorkerBackend([])
        with pytest.raises(ValueError):
            RemoteWorkerBackend(["no-port-here"])


# -------------------------------------------------------------------- hash ring
class TestHashRing:
    def test_ownership_is_deterministic_and_order_independent(self):
        nodes = ["10.0.0.1:7877", "10.0.0.2:7877", "10.0.0.3:7877"]
        ring = HashRing(nodes)
        again = HashRing(list(reversed(nodes)))
        keys = [f"key-{index}" for index in range(200)]
        owners = [ring.node_for(key) for key in keys]
        assert owners == [again.node_for(key) for key in keys]
        assert set(owners) <= set(nodes)
        assert len(set(owners)) == len(nodes)  # vnodes spread the keyspace

    def test_add_reshuffles_at_most_2_over_n_of_keys(self):
        """Acceptance: growing the mesh moves only the new member's key
        ranges — bounded by 2/N of ~1000 keys — and every moved key
        lands on the new member (never shuffled between survivors)."""
        nodes = [f"10.0.0.{index}:7877" for index in range(1, 5)]
        ring = HashRing(nodes)
        keys = [f"job-{index}" for index in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        assert ring.add("10.0.0.9:7877")
        moved = [key for key in keys if ring.node_for(key) != before[key]]
        assert len(moved) <= 2 * len(keys) / len(ring)
        assert all(ring.node_for(key) == "10.0.0.9:7877" for key in moved)

    def test_remove_moves_only_the_lost_members_keys(self):
        nodes = [f"10.0.0.{index}:7877" for index in range(1, 6)]
        ring = HashRing(nodes)
        keys = [f"job-{index}" for index in range(1000)]
        before = {key: ring.node_for(key) for key in keys}
        lost = nodes[2]
        assert ring.remove(lost)
        for key in keys:
            if before[key] == lost:
                assert ring.node_for(key) in ring.nodes
            else:
                assert ring.node_for(key) == before[key]
        orphaned = sum(1 for key in keys if before[key] == lost)
        assert orphaned <= 2 * len(keys) / (len(ring) + 1)

    def test_empty_ring_and_membership_queries(self):
        ring = HashRing()
        assert ring.node_for("anything") is None
        assert ring.add("a:1") and not ring.add("a:1")
        assert "a:1" in ring and len(ring) == 1
        assert ring.node_for("anything") == "a:1"
        assert ring.remove("a:1") and not ring.remove("a:1")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


# ------------------------------------------------------------- priority aging
class TestSchedulerAging:
    def test_aged_priority_levels(self):
        assert aged_priority(0, 0.0, 30.0) == 0
        assert aged_priority(0, 29.9, 30.0) == 0
        assert aged_priority(0, 30.0, 30.0) == 1
        assert aged_priority(2, 95.0, 30.0) == 5
        assert aged_priority(3, 1000.0, None) == 3   # aging off
        assert aged_priority(3, 1000.0, 0.0) == 3    # non-positive interval
        assert aged_priority(3, -5.0, 30.0) == 3     # clock skew tolerated

    def test_waiting_low_priority_overtakes_fresh_high_priority(self):
        """Satellite: the starvation case — a low-priority slot that has
        waited long enough outranks younger high-priority traffic."""
        scheduler = JobScheduler(aging_interval_s=10.0)
        old = scheduler.add(WarpJob(name="old-low", benchmark="brev",
                                    small=True, priority=0),
                            enqueued_monotonic=0.0)
        scheduler.add(WarpJob(name="new-high", benchmark="idct",
                              small=True, priority=2),
                      enqueued_monotonic=100.0)
        # At t=100 the low-priority slot has waited 100s: +10 levels.
        assert scheduler.effective_priority(old, now=100.0) == 10
        assert [slot.job.name for slot in scheduler.plan(now=100.0)] \
            == ["old-low", "new-high"]
        # At submission time no age has accrued: strict priority holds.
        assert [slot.job.name for slot in scheduler.plan(now=0.0)] \
            == ["new-high", "old-low"]

    def test_without_aging_the_plan_is_the_classic_sort(self):
        aged = JobScheduler(aging_interval_s=None)
        classic = JobScheduler()
        for name, priority, stamp in (("a", 0, 0.0), ("b", 5, 900.0),
                                      ("c", 2, 400.0)):
            for scheduler in (aged, classic):
                scheduler.add(WarpJob(name=name, benchmark="brev",
                                      small=True, priority=priority,
                                      max_instructions=100_000
                                      + priority),
                              enqueued_monotonic=stamp)
        plan = [slot.job.name for slot in aged.plan(now=1e9)]
        assert plan == [slot.job.name for slot in classic.plan()]
        assert plan == ["b", "c", "a"]

    def test_dedup_twin_keeps_the_earliest_aging_stamp(self):
        scheduler = JobScheduler(aging_interval_s=10.0)
        slot = scheduler.add(WarpJob(name="first", benchmark="brev",
                                     small=True),
                             enqueued_monotonic=50.0)
        twin = scheduler.add(WarpJob(name="twin", benchmark="brev",
                                     small=True),
                             enqueued_monotonic=5.0)
        assert twin is slot
        assert slot.enqueued_monotonic == 5.0  # age never resets


# ------------------------------------------------------ concurrent batch pool
def _fake_slow_worker(job):
    """Worker that holds a batch runner busy for a deterministic window
    without paying for a real CAD flow."""
    time.sleep(0.3)
    return ServiceResult(job_name=job.name, workload=job.benchmark,
                         config_label=job.config_label or "paper",
                         engine=job.engine, ok=True)


class TestGatewayConcurrency:
    def test_per_client_quota_yields_typed_rejection(self):
        """Satellite: one tenant filling its quota gets a 429-style busy
        reply carrying its own occupancy; other tenants stay admitted."""
        slow = WarpService(workers=0, worker_fn=_fake_slow_worker)
        with running_gateway(queue_limit=64, client_quota=2,
                             service=slow) as gateway:
            with GatewayClient(gateway.address) as client:
                client.submit(
                    [WarpJob(name=f"q{i}", benchmark="brev", small=True)
                     for i in range(2)],
                    wait=False, client_id="tenant-a")
                with pytest.raises(GatewayBusyError, match="quota"):
                    client.submit([WarpJob(name="late", benchmark="brev",
                                           small=True)],
                                  client_id="tenant-a")
                # The raw reply carries the client's own occupancy (all
                # additive keys; the error/code shape is the classic busy).
                with socket.create_connection(("127.0.0.1", gateway.port),
                                              timeout=30) as sock:
                    protocol.send_frame(sock, {
                        "magic": protocol.PROTOCOL_MAGIC,
                        "version": protocol.PROTOCOL_VERSION})
                    assert protocol.recv_frame(sock)["ok"]
                    protocol.send_frame(sock, {
                        "verb": "submit", "wait": True,
                        "client": "tenant-a",
                        "jobs": protocol.jobs_to_plain(
                            [WarpJob(name="raw", benchmark="brev",
                                     small=True)])})
                    reply = protocol.recv_frame(sock)
                assert reply["error"] == "busy" and reply["code"] == 429
                assert reply["client"] == "tenant-a"
                assert reply["client_pending"] == 2
                assert reply["client_quota"] == 2
                # An anonymous (or other-tenant) submission is only held
                # to the global limit.
                batch_id = client.submit(
                    [WarpJob(name="other", benchmark="brev", small=True)],
                    wait=False, client_id="tenant-b")
                assert batch_id.startswith("batch-")
                metrics = client.metrics(include_spans=False)
                assert metrics["client_quota"] == 2
                assert metrics["quota_rejections"] >= 2

    def test_quota_larger_batches_are_batch_too_large(self):
        with running_gateway(queue_limit=64, client_quota=2) as gateway:
            with GatewayClient(gateway.address) as client:
                with pytest.raises(RemoteError, match="batch-too-large"):
                    client.submit([WarpJob(name=f"j{i}", benchmark="brev",
                                           small=True) for i in range(3)],
                                  client_id="tenant-a")

    def test_concurrent_batches_match_sequential_canonical(self):
        """Satellite: two batches with overlapping CAD content executed
        concurrently (shared service, shared caches) are bit-identical —
        on the canonical fields — to sequential fresh-cache runs."""
        jobs_a = [WarpJob(name="a-brev", benchmark="brev", small=True),
                  WarpJob(name="a-idct", benchmark="idct", small=True)]
        jobs_b = [WarpJob(name="b-brev", benchmark="brev", small=True),
                  WarpJob(name="b-matmul", benchmark="matmul", small=True)]
        with running_gateway(service=WarpService(
                workers=0, artifact_cache=CadArtifactCache()),
                max_concurrent_batches=2) as gateway:
            with GatewayClient(gateway.address) as submit_a, \
                    GatewayClient(gateway.address) as submit_b:
                id_a = submit_a.submit(jobs_a, wait=False)
                id_b = submit_b.submit(jobs_b, wait=False)
                deadline = time.time() + 300
                while True:
                    status_a = submit_a.status(id_a)
                    status_b = submit_b.status(id_b)
                    if status_a["state"] == "done" \
                            and status_b["state"] == "done":
                        break
                    assert time.time() < deadline, (status_a, status_b)
                    time.sleep(0.05)
        serial_a = WarpService(workers=0,
                               artifact_cache=CadArtifactCache()).run(jobs_a)
        serial_b = WarpService(workers=0,
                               artifact_cache=CadArtifactCache()).run(jobs_b)
        assert status_a["report"].canonical() == serial_a.canonical()
        assert status_b["report"].canonical() == serial_b.canonical()

    def test_aging_prevents_batch_starvation(self):
        """Satellite: under sustained high-priority traffic on a single
        runner, an aged low-priority batch is scheduled ahead of younger
        high-priority batches (and last without aging)."""
        def run_drill(aging_interval_s):
            slow = WarpService(workers=0, worker_fn=_fake_slow_worker)
            with running_gateway(service=slow, max_concurrent_batches=1,
                                 aging_interval_s=aging_interval_s) \
                    as gateway:
                with GatewayClient(gateway.address) as client:
                    client.submit([WarpJob(name="blocker", benchmark="brev",
                                           small=True, priority=9)],
                                  wait=False)
                    low = client.submit([WarpJob(name="low", benchmark="brev",
                                                 small=True, priority=0)],
                                        wait=False)
                    # Let the low-priority batch accumulate age worth more
                    # than the priority gap before the high traffic lands.
                    time.sleep(0.15)
                    highs = [client.submit(
                        [WarpJob(name=f"high-{index}", benchmark="brev",
                                 small=True, priority=5)], wait=False)
                        for index in range(2)]
                    order = []
                    deadline = time.time() + 120
                    pending = {low: "low", highs[-1]: "high-last"}
                    while pending:
                        assert time.time() < deadline
                        for batch_id in list(pending):
                            if client.status(batch_id)["state"] == "done":
                                order.append(pending.pop(batch_id))
                        time.sleep(0.02)
            return order
        # Aging on (one level per 20ms): "low" ages past priority 5
        # while the blocker runs, so it beats the younger high batches.
        assert run_drill(0.02) == ["low", "high-last"]
        # Aging off: classic strict priority starves it to the back.
        assert run_drill(None) == ["high-last", "low"]


# -------------------------------------------------------------- gateway mesh
def _stored_service(path):
    """A serial service over its own explicit disk store (two of these
    can coexist in one process, unlike ``configure_process_store``)."""
    return WarpService(workers=0, artifact_cache=CadArtifactCache(
        store=DiskArtifactStore(path)))


class TestGatewayMesh:
    def test_join_and_peers_verbs_mesh_two_gateways(self, tmp_path):
        with running_gateway(service=_stored_service(tmp_path / "g1")) as g1:
            with running_gateway(service=_stored_service(tmp_path / "g2"),
                                 peers=[g1.address]) as g2:
                for gateway in (g1, g2):
                    with GatewayClient(gateway.address) as client:
                        view = client.mesh_peers()
                    assert view["self"] == gateway.address
                    assert set(view["members"]) == {g1.address, g2.address}
                    assert view["ring_version"] >= 2
                    # The additive block is JSON-plain: it must survive
                    # the codec byte-for-byte (no exotic types).
                    assert json.loads(json.dumps(view)) == view

    def test_mesh_fetch_serves_raw_store_entries(self, tmp_path):
        service = _stored_service(tmp_path / "g1")
        store = service.artifact_cache.disk_store
        store.stage_put("synthesis", "cafe" * 4, {"luts": 42})
        with running_gateway(service=service) as gateway:
            with GatewayClient(gateway.address) as client:
                blob = client.mesh_fetch("synthesis", "cafe" * 4)
                assert blob == store._entry_path(
                    "synthesis", "cafe" * 4).read_bytes()
                assert client.mesh_fetch("synthesis", "beef" * 4) is None

    def test_cold_gateway_warms_from_its_peer(self, tmp_path):
        """Acceptance: a cold mesh member pulls warm stage entries from
        its peer (counted as peer hits end to end, in the report and the
        live scrape) and produces a canonically identical report."""
        jobs = [WarpJob(name="brev-s", benchmark="brev", small=True)]
        with running_gateway(service=_stored_service(tmp_path / "g1")) as g1:
            with GatewayClient(g1.address) as client:
                warm = client.submit(jobs)
            assert warm.num_failed == 0
            with running_gateway(service=_stored_service(tmp_path / "g2"),
                                 peers=[g1.address]) as g2:
                with GatewayClient(g2.address) as client:
                    cold = client.submit(jobs)
                    metrics = client.metrics(include_spans=False)
        assert cold.num_failed == 0
        assert cold.canonical() == warm.canonical()
        assert cold.cache_peer_hits > 0
        assert cold.cache_disk_hits == 0  # nothing was local yet
        result = cold.results[0]
        assert "peer-hit" in result.stage_cache.values()
        # The report's stage table breaks peer hits out.
        plain = cold.to_plain()
        assert sum(stage["peer_hits"]
                   for stage in plain["stages"].values()) \
            == cold.cache_peer_hits
        # Mesh counters: in the additive reply block and the live scrape.
        assert metrics["mesh"]["peer_fetch_hits"] > 0
        families = metrics["metrics"]
        assert any(sample["labels"].get("result") == "hit"
                   and sample["value"] > 0
                   for sample in families.get(
                       "warp_mesh_peer_fetches_total", {}).get("samples", []))
        assert any(sample["value"] >= 2.0 for sample in families.get(
            "warp_mesh_members", {}).get("samples", []))

    def test_ring_routed_submission_is_forwarded_to_the_owner(self, tmp_path):
        with running_gateway(service=_stored_service(tmp_path / "g1")) as g1:
            with running_gateway(service=_stored_service(tmp_path / "g2"),
                                 peers=[g1.address]) as g2:
                ring = HashRing([g1.address, g2.address])
                owned = {}
                for index in range(64):
                    job = WarpJob(name=f"probe-{index}", benchmark="brev",
                                  small=True,
                                  max_instructions=150_000 + index)
                    owner = ring.node_for(repr(job.dedup_key()))
                    owned.setdefault(owner, job)
                    if len(owned) == 2:
                        break
                assert set(owned) == {g1.address, g2.address}
                with GatewayClient(g2.address) as client:
                    # Not the owner: relayed to g1, reply says so.
                    relayed = client._round_trip({
                        "verb": "submit", "wait": True, "route": "ring",
                        "jobs": protocol.jobs_to_plain(
                            [owned[g1.address]])})
                    assert relayed.get("forwarded_to") == g1.address
                    report = ServiceReport.from_plain(relayed["report"])
                    assert report.num_failed == 0
                    # The owner executes locally: no forward tag.
                    local = client._round_trip({
                        "verb": "submit", "wait": True, "route": "ring",
                        "jobs": protocol.jobs_to_plain(
                            [owned[g2.address]])})
                    assert "forwarded_to" not in local
                    assert ServiceReport.from_plain(
                        local["report"]).num_failed == 0

    def test_status_and_metrics_carry_mesh_info_additively(self):
        """Satellite: replies gain a ``mesh`` block without any protocol
        version bump — old decoders ignore it, the report still decodes."""
        with running_gateway() as gateway:
            with GatewayClient(gateway.address) as client:
                batch_id = client.submit(
                    [WarpJob(name="j", benchmark="brev", small=True)],
                    wait=False)
                deadline = time.time() + 120
                while True:
                    status = client.status(batch_id)
                    if status["state"] == "done":
                        break
                    assert time.time() < deadline, status
                    time.sleep(0.05)
                assert status["mesh"]["self"] == gateway.address
                assert status["mesh"]["members"] == [gateway.address]
                assert isinstance(status["report"], ServiceReport)
                metrics = client.metrics(include_spans=False)
                assert metrics["mesh"]["ring_version"] >= 1
                stats = client.cache_stats()
                assert stats["mesh"]["self"] == gateway.address

    def test_mesh_backend_routes_by_ring_and_fails_over(self):
        addresses = [("127.0.0.1", 7001), ("127.0.0.1", 7002),
                     ("127.0.0.1", 7003)]
        backend = MeshBackend(addresses)
        jobs = [WarpJob(name=f"j{index}", benchmark="brev", small=True,
                        max_instructions=100_000 + index)
                for index in range(60)]
        reference = HashRing([f"127.0.0.1:{port}" for _, port in addresses])
        before = {}
        for job in jobs:
            host, port = backend.address_for(job)
            assert f"{host}:{port}" \
                == reference.node_for(repr(job.dedup_key()))
            before[job.name] = (host, port)
        # Routing survives pickling (pool workers rebuild the ring).
        clone = pickle.loads(pickle.dumps(backend))
        assert all(clone.address_for(job) == before[job.name]
                   for job in jobs)
        # Failover: dropping a dead member re-routes only its jobs.
        backend._note_failure(("127.0.0.1", 7002))
        assert backend.ring_members() == ("127.0.0.1:7001",
                                          "127.0.0.1:7003")
        moved = [job.name for job in jobs
                 if backend.address_for(job) != before[job.name]]
        assert moved == [job.name for job in jobs
                         if before[job.name] == ("127.0.0.1", 7002)]
        for job in jobs:
            assert backend.address_for(job)[1] != 7002

    def test_mesh_backend_runs_a_suite_over_a_mesh(self, tmp_path):
        """MeshBackend against a live two-gateway mesh: every result is
        identical to the serial in-process path."""
        jobs = _small_jobs()
        with running_gateway(service=_stored_service(tmp_path / "g1")) as g1:
            with running_gateway(service=_stored_service(tmp_path / "g2"),
                                 peers=[g1.address]) as g2:
                backend = MeshBackend([g1.address, g2.address],
                                      client_id="suite")
                remote = WarpService(workers=0, worker_fn=backend).run(jobs)
        local = WarpService(workers=0,
                            artifact_cache=CadArtifactCache()).run(jobs)
        assert remote.num_failed == 0
        assert remote.canonical() == local.canonical()


# ----------------------------------------------------------------------- CLI verbs
class TestServerCli:
    def test_suite_stages_flag_threads_into_jobs(self, tmp_path):
        """Satellite: `repro-warp suite --stages` selects alternate CAD
        passes from the sweep CLI, dedup-keyed like WarpJob(stages=...)."""
        out = tmp_path / "report.json"
        code = main(["suite", "--benchmarks", "brev", "--small",
                     "--stages", "decompile,synthesis,place,route-greedy,"
                                 "implement,binary-update",
                     "--out", str(out), "--quiet"])
        assert code == 0
        plain = json.loads(out.read_text())
        assert plain["num_jobs"] == 1 and plain["num_failed"] == 0
        # The greedy router filled the route slot.
        assert "route" in plain["jobs"][0]["stage_cache"]

        from repro.service.jobs import suite_sweep_jobs
        stages = ("decompile", "synthesis", "place", "route-greedy",
                  "implement", "binary-update")
        with_stages = suite_sweep_jobs(benchmarks=["brev"], stages=stages)
        without = suite_sweep_jobs(benchmarks=["brev"])
        assert with_stages[0].stages == stages
        assert with_stages[0].dedup_key() != without[0].dedup_key()

    def test_suite_rejects_unknown_stage_lists(self, capsys):
        code = main(["suite", "--benchmarks", "brev", "--small",
                     "--stages", "synthesis,place", "--quiet"])
        assert code == 2
        assert "stage" in capsys.readouterr().err

    def test_submit_cli_round_trip(self, tmp_path):
        jobfile = EXAMPLES / "remote_jobs.json"
        out = tmp_path / "remote.json"
        with running_gateway(service=WarpService(
                workers=0, artifact_cache=CadArtifactCache())) as gateway:
            code = main(["submit", str(jobfile), "--gateway", gateway.address,
                         "--out", str(out), "--quiet"])
        assert code == 0
        plain = json.loads(out.read_text())
        assert plain["num_failed"] == 0
        assert {job["job_name"] for job in plain["jobs"]} \
            == {job.name for job in load_job_file(jobfile)}

    def test_malformed_gateway_addresses_are_clean_cli_errors(self, capsys):
        jobfile = EXAMPLES / "remote_jobs.json"
        assert main(["submit", str(jobfile), "--gateway", "localhost",
                     "--quiet"]) == 2
        assert "host:port" in capsys.readouterr().err
        assert main(["remote-suite", "--gateways", "nonsense",
                     "--benchmarks", "brev", "--small", "--quiet"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_submit_cli_reports_unreachable_gateway(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        jobfile = EXAMPLES / "remote_jobs.json"
        code = main(["submit", str(jobfile),
                     "--gateway", f"127.0.0.1:{dead_port}", "--quiet"])
        assert code == 3
        assert "gateway" in capsys.readouterr().err

    def test_remote_suite_cli(self):
        with running_gateway(service=WarpService(
                workers=0, artifact_cache=CadArtifactCache())) as gateway:
            code = main(["remote-suite", "--gateways", gateway.address,
                         "--benchmarks", "brev", "--small", "--quiet"])
        assert code == 0


# ------------------------------------------------------------------ gateway smoke
def test_gateway_smoke_example_jobs():
    """CI smoke: start a gateway, submit the example job file over
    localhost, and assert report parity with the in-process results."""
    jobs = load_job_file(EXAMPLES / "remote_jobs.json")
    with running_gateway(service=WarpService(
            workers=0, artifact_cache=CadArtifactCache())) as gateway:
        with GatewayClient(gateway.address) as client:
            remote = client.submit(jobs)
    local = WarpService(workers=0,
                        artifact_cache=CadArtifactCache()).run(jobs)
    assert remote.num_failed == 0
    _assert_results_identical(remote.results, local.results)
    assert remote.speedup_table() == local.speedup_table()
    assert remote.energy_table() == local.energy_table()
