"""Cross-engine ``run_slice`` budget-split equivalence at adversarial
split points.

The checkpoint plane promises that preemption at *any* instruction
boundary is invisible: a run carved into slices finishes with the same
architectural state as an uninterrupted one, on every engine, even when
the budget expires inside a promoted hot region, lands in the middle of
an atomic branch/delay-slot pair, or stops one instruction short of a
fault.  The divergence bisector (:mod:`repro.fuzz.bisect`) leans on
exactly this property, so these splits are pinned here directly.
"""

from __future__ import annotations

import pytest

from repro.fuzz import generate_program
from repro.isa import assemble
from repro.microblaze import (
    MicroBlazeSystem,
    PAPER_CONFIG,
    engine_names,
)
from repro.microblaze.checkpoint import run_slice, spawn_from_checkpoint

#: Same promotion threshold as the fuzz harness / differential suite, so
#: the region and jit engines really compile the hot loop mid-run.
HOT_THRESHOLD = 8

#: 64 iterations of a 3-instruction loop — promoted long before it exits —
#: then a misaligned word load faults.
HOT_LOOP_THEN_FAULT = """
    addi r5, r0, 64
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    addi r3, r3, 3
    lw   r9, r3, r0
    bri  0
"""

#: Every loop iteration retires its branch and delay slot atomically, so
#: half of all instruction counts fall *inside* a delay pair.
DELAY_PAIR_LOOP = """
    addi r5, r0, 20
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bneid r5, loop
    add  r3, r3, r3
    bri  0
"""

BIG = 1_000_000


def _system(engine: str, precise: bool = False) -> MicroBlazeSystem:
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine,
                              precise_fault_stats=precise)
    impl = system.cpu._engine_impl
    if hasattr(impl, "hot_threshold"):
        impl.hot_threshold = HOT_THRESHOLD
    return system


def _architectural(system: MicroBlazeSystem) -> tuple:
    return (tuple(system.cpu.registers), bytes(system.data_bram.storage),
            system.cpu.halted)


def _full(system: MicroBlazeSystem) -> tuple:
    return _architectural(system) + (system.cpu.pc, system.cpu.stats)


def _run_whole(program, engine: str, precise: bool = False) -> tuple:
    system = _system(engine, precise)
    system.start(program)
    fault = None
    try:
        run_slice(system, BIG)
    except Exception as error:  # noqa: BLE001 - the fault is compared
        fault = f"{type(error).__name__}: {error}"
    return system, fault


def _run_split(program, engine: str, split: int,
               precise: bool = False) -> tuple:
    system = _system(engine, precise)
    system.start(program)
    fault = None
    try:
        finished = run_slice(system, split)
        if not finished:
            run_slice(system, BIG)
    except Exception as error:  # noqa: BLE001 - the fault is compared
        fault = f"{type(error).__name__}: {error}"
    return system, fault


def _fault_count(program) -> int:
    """Instructions the reference retires before the fault."""
    system, fault = _run_whole(program, "interp")
    assert fault is not None
    return system.cpu.stats.instructions


class TestSplitInsideHotRegion:
    """Budget expiry after the loop is promoted but before it exits: the
    block engine is preempted mid-translation-lifetime."""

    @pytest.mark.parametrize("engine", engine_names())
    @pytest.mark.parametrize("split", (2, 30, 100))
    def test_halting_program_is_split_invariant(self, engine, split):
        program = generate_program(1, "branchy")
        whole, whole_fault = _run_whole(program, engine)
        sliced, sliced_fault = _run_split(program, engine, split)
        assert whole_fault is None and sliced_fault is None
        assert _full(sliced) == _full(whole)

    @pytest.mark.parametrize("engine", engine_names())
    def test_cross_engine_checkpoint_handoff(self, engine):
        """Interp runs the prefix, the checkpoint crosses the engine
        boundary, ``engine`` finishes — and lands exactly where an
        uninterrupted interp run does (the bisector's core move)."""
        program = generate_program(1, "branchy")
        prefix = _system("interp")
        prefix.start(program)
        assert not run_slice(prefix, 50)
        blob = prefix.checkpoint()
        resumed = spawn_from_checkpoint(blob, engine=engine)
        impl = resumed.cpu._engine_impl
        if hasattr(impl, "hot_threshold"):
            impl.hot_threshold = HOT_THRESHOLD
        assert run_slice(resumed, BIG)
        reference, _ = _run_whole(program, "interp")
        assert _full(resumed) == _full(reference)


class TestSplitOnDelaySlot:
    """Budgets landing inside an atomic branch/delay-slot pair must snap
    forward to the pair's end, never split it."""

    @pytest.mark.parametrize("engine", engine_names())
    @pytest.mark.parametrize("split", (5, 6, 7, 8))
    def test_mid_pair_budgets_snap_and_stay_equivalent(self, engine, split):
        program = assemble(DELAY_PAIR_LOOP, name="delay-pairs")
        whole, _ = _run_whole(program, engine)
        sliced_system = _system(engine)
        sliced_system.start(program)
        finished = run_slice(sliced_system, split)
        if not finished:
            # Preemption stopped at a real boundary: at or one past the
            # requested budget (one past when it snapped over a pair).
            actual = sliced_system.cpu.stats.instructions
            assert actual in (split, split + 1)
            run_slice(sliced_system, BIG)
        assert _full(sliced_system) == _full(whole)

    def test_snap_is_observable_on_the_reference(self):
        """At least one of the probed budgets really lands mid-pair (the
        adversarial case exists, it is not vacuously passed)."""
        program = assemble(DELAY_PAIR_LOOP, name="delay-pairs")
        snapped = []
        for split in (5, 6, 7, 8):
            system = _system("interp")
            system.start(program)
            if not run_slice(system, split):
                snapped.append(system.cpu.stats.instructions - split)
        assert 1 in snapped


class TestSplitOneBeforeFault:
    """The nastiest boundary: the slice ends one instruction before a
    memory fault, so the resumed slice's very first step faults."""

    @pytest.mark.parametrize("engine", engine_names())
    def test_precise_mode_fault_state_is_split_invariant(self, engine):
        program = assemble(HOT_LOOP_THEN_FAULT, name="hot-fault")
        boundary = _fault_count(program)
        whole, whole_fault = _run_whole(program, engine, precise=True)
        sliced, sliced_fault = _run_split(program, engine, boundary - 1,
                                          precise=True)
        assert whole_fault is not None
        assert sliced_fault == whole_fault
        assert _full(sliced) == _full(whole)

    @pytest.mark.parametrize("engine", engine_names())
    def test_default_mode_keeps_architectural_state(self, engine):
        """Default mode only promises registers + data memory at a fault
        (the tier-1 contract); those must survive any split."""
        program = assemble(HOT_LOOP_THEN_FAULT, name="hot-fault")
        boundary = _fault_count(program)
        whole, whole_fault = _run_whole(program, engine)
        sliced, sliced_fault = _run_split(program, engine, boundary - 1)
        assert whole_fault is not None and sliced_fault is not None
        assert type(whole_fault) is type(sliced_fault)
        assert _architectural(sliced) == _architectural(whole)
