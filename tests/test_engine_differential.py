"""Differential equivalence of *every* registered execution engine.

The per-engine test modules (``test_threaded_engine``, ``test_jit_engine``,
``test_region_engine``) pin each engine's own mechanisms; this module is
the registry-wide contract: every name :func:`engine_names` returns must
reproduce the reference interpreter bit for bit — statistics, register
file, data image, *and* memory-port access counters — across the
six-benchmark suite, under profiler hooks, through live binary patches
and on the precise-fault paths.  A future engine registered into the
registry is pulled into all of these tests automatically.
"""

from __future__ import annotations

import pytest

from repro.apps import build_suite
from repro.isa import assemble
from repro.microblaze import (
    ExecutionLimitExceeded,
    MemoryError_,
    MicroBlazeSystem,
    PAPER_CONFIG,
    engine_names,
)
from repro.partition.binary_patch import patch_live_words
from repro.profiler.branch_cache import BranchFrequencyCache
from repro.profiler.profiler import OnChipProfiler

SUITE_NAMES = [benchmark.name for benchmark in build_suite(small=True)]

#: Low promotion threshold so the region engine actually forms regions
#: inside the small suite runs (the default threshold is tuned for the
#: full-size kernels).
HOT_THRESHOLD = 8


def _system(engine: str) -> MicroBlazeSystem:
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
    impl = system.cpu._engine_impl
    if hasattr(impl, "hot_threshold"):
        impl.hot_threshold = HOT_THRESHOLD
    return system


def _observe(system: MicroBlazeSystem, result) -> tuple:
    return (
        result.stats,
        result.return_value,
        result.data_image,
        list(system.cpu.registers),
        system.cpu.pc,
        # Port accounting is part of the architectural model (the paper's
        # profiler snoops these buses), so engines may not skew it.
        system.data_bram.port_a_accesses,
        system.instr_bram.port_a_accesses,
        system.data_bram.port_b_accesses,
        system.instr_bram.port_b_accesses,
    )


# ---------------------------------------------------------------- differential
class TestSuiteBitExact:
    @pytest.mark.parametrize("engine", engine_names())
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_suite_benchmark_bit_exact(self, engine, name,
                                       compiled_small_programs):
        program = compiled_small_programs[name]
        reference_system = _system("interp")
        reference = _observe(reference_system,
                             reference_system.run(program))
        system = _system(engine)
        observed = _observe(system, system.run(program))
        assert observed == reference

    @pytest.mark.parametrize("engine", engine_names())
    def test_profiler_rankings_identical(self, engine,
                                         compiled_small_programs):
        program = compiled_small_programs["canrdr"]
        profilers = {}
        for which in ("interp", engine):
            profiler = OnChipProfiler(BranchFrequencyCache(num_entries=16))
            system = _system(which)
            system.cpu.add_listener(profiler)
            system.run(program)
            profilers[which] = profiler
        a, b = profilers["interp"], profilers[engine]
        assert a.critical_regions() == b.critical_regions()
        assert a.edge_counts == b.edge_counts
        assert (a.total_branches, a.backward_taken, a.instructions_observed) \
            == (b.total_branches, b.backward_taken, b.instructions_observed)


# -------------------------------------------------------------------- faults
#: A misaligned word load (address 9) landing mid-superblock.
MISALIGNED_MID_BLOCK = """
    addi r5, r0, 8
    addi r6, r0, 1
    add  r7, r5, r6        # r7 = 9: misaligned
    addi r8, r0, 3
    lw   r9, r7, r0        # faults here, mid-block
    addi r10, r0, 99       # must never execute
    bri  0
"""

MISALIGNED_IN_HOT_LOOP = """
    addi r5, r0, 64        # iterations until the fault
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    lw   r9, r3, r0        # r3 = 64 after the loop: aligned... (64 % 4 == 0)
    addi r3, r3, 3
    lw   r9, r3, r0        # 67: misaligned, after the hot loop retired
    bri  0
"""


class TestFaultPaths:
    @pytest.mark.parametrize("engine", engine_names())
    @pytest.mark.parametrize("source", [MISALIGNED_MID_BLOCK,
                                        MISALIGNED_IN_HOT_LOOP])
    def test_precise_mode_matches_interpreter(self, engine, source):
        program = assemble(source, name="faulty")
        states = {}
        for which in ("interp", engine):
            system = MicroBlazeSystem(config=PAPER_CONFIG, engine=which,
                                      precise_fault_stats=True)
            impl = system.cpu._engine_impl
            if hasattr(impl, "hot_threshold"):
                impl.hot_threshold = HOT_THRESHOLD
            with pytest.raises(MemoryError_) as info:
                system.run(program)
            states[which] = (system.cpu.stats, list(system.cpu.registers),
                             system.cpu.pc, str(info.value))
        assert states[engine] == states["interp"]

    @pytest.mark.parametrize("engine", engine_names())
    def test_default_mode_keeps_architectural_state(self, engine):
        """Whatever the wholesale-statistics slack, registers and memory
        at the fault must be interpreter-identical in default mode."""
        program = assemble(MISALIGNED_IN_HOT_LOOP, name="faulty")
        states = {}
        for which in ("interp", engine):
            system = _system(which)
            with pytest.raises(MemoryError_):
                system.run(program)
            states[which] = (list(system.cpu.registers),
                             bytes(system.data_bram.storage))
        assert states[engine] == states["interp"]


# --------------------------------------------------------------- live patching
PATCH_LOOP = """
    addi r5, r0, 40
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    bri 0
"""


class TestLivePatchInvalidation:
    """The dynamic partitioning module patches the *executing* binary;
    every engine must drop any translation covering the patched words —
    superblocks and fused regions alike."""

    def _run_patched(self, engine):
        program = assemble(PATCH_LOOP)
        system = _system(engine)
        system.load(program)
        system.cpu.reset(entry_point=program.entry_point)
        # Deep enough into the run that the block engines are warm and
        # the region engine has promoted the loop past HOT_THRESHOLD.
        with pytest.raises(ExecutionLimitExceeded):
            system.cpu.run(max_instructions=80)
        patched = assemble(PATCH_LOOP.replace("addi r3, r3, 1",
                                              "addi r3, r3, 16"))
        address = 8  # byte address of the first loop-body instruction
        patch_live_words(system, address, [patched.text[address // 4]])
        system.cpu.run()
        return system.cpu.read_register(3), system.cpu.stats

    @pytest.mark.parametrize("engine", engine_names())
    def test_mid_run_word_patch_takes_effect(self, engine):
        assert self._run_patched(engine) == self._run_patched("interp")
