"""Checkpoint-driven divergence bisection.

The headline guarantee: register a deliberately wrong engine (an
interpreter that corrupts one register the first time a chosen pc
retires), fuzz it, and the bisector must pin the *exact* injected pc and
produce a repro bundle that replays from ``(seed, profile)`` alone.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.fuzz import (
    bisect_divergence,
    check_program,
    generate_program,
    run_campaign,
)
from repro.microblaze import (
    ExecutionLimitExceeded,
    MicroBlazeSystem,
    PAPER_CONFIG,
)
from repro.microblaze.engines import _REGISTRY, register_engine
from repro.microblaze.engines.interp import InterpreterEngine

SEED, PROFILE = 0, "mixed"


class MutantEngine(InterpreterEngine):
    """The reference loop plus one injected register corruption: after the
    instruction at :attr:`target_pc` retires, ``r3`` (the generated
    programs' checksum register) is flipped by one bit."""

    #: Class-level so the registry factory (``MutantEngine(cpu)``) needs
    #: no extra arguments; the test fixture sets it.
    target_pc: Optional[int] = None

    def run(self, max_instructions, max_cycles=None):
        cpu = self.cpu
        while not cpu.halted:
            if cpu.stats.instructions >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions "
                    f"at pc={cpu.pc:#x}")
            pc = cpu.pc
            cpu.step()
            if pc == self.target_pc:
                cpu.registers[3] ^= 0x10000


def _retired_steps(program):
    """The reference retirement order: ``(pc, instructions_before)`` per
    :meth:`step` call.  A branch retires atomically with its delay slot,
    so the instruction count can advance by two between steps — step
    index and instruction count are *not* interchangeable."""
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine="interp")
    system.start(program)
    steps = []
    while not system.cpu.halted:
        steps.append((system.cpu.pc, system.cpu.stats.instructions))
        system.cpu.step()
    return steps


@pytest.fixture()
def mutant_engine():
    program = generate_program(SEED, PROFILE)
    # Inject in the checksum epilogue: it retires exactly once and the
    # fold chain is bijective, so the corruption reaches the final state.
    MutantEngine.target_pc = _retired_steps(program)[-4][0]
    register_engine("mutant", MutantEngine)
    try:
        yield program, MutantEngine.target_pc
    finally:
        del _REGISTRY["mutant"]
        MutantEngine.target_pc = None


class TestMutantPinpointing:
    def test_bisector_reports_the_exact_injected_pc(self, mutant_engine):
        program, target_pc = mutant_engine
        bundle = bisect_divergence(program, "mutant", seed=SEED,
                                   profile=PROFILE)
        assert bundle is not None
        assert bundle.first_divergent_pc == target_pc
        expected = next(count for pc, count in _retired_steps(program)
                        if pc == target_pc)
        assert bundle.instructions_before_divergence == expected
        assert "r3" in bundle.state_diff["registers"]
        assert bundle.bisect_steps > 0
        # Logarithmic, not linear: far fewer probes than instructions.
        assert bundle.bisect_steps < 32

    def test_bundle_replays_from_seed_and_profile_alone(self, mutant_engine):
        program, target_pc = mutant_engine
        bundle = bisect_divergence(program, "mutant", seed=SEED,
                                   profile=PROFILE)
        replay = bundle.replay
        regenerated = generate_program(replay["seed"], replay["profile"])
        assert regenerated.text == program.text
        assert bundle.source == regenerated.source
        again = bisect_divergence(regenerated, replay["engine"],
                                  seed=replay["seed"],
                                  profile=replay["profile"],
                                  precise_fault_stats=replay[
                                      "precise_fault_stats"])
        assert again is not None
        assert again.first_divergent_pc == bundle.first_divergent_pc

    def test_campaign_bisects_the_mutant_automatically(self, mutant_engine):
        program, target_pc = mutant_engine
        report = run_campaign(1, start_seed=SEED, profile=PROFILE,
                              engines=("mutant",))
        assert report.unexplained_divergences == 1
        assert len(report.bundles) == 1
        bundle = report.bundles[0]
        assert bundle["engine"] == "mutant"
        assert bundle["first_divergent_pc"] == target_pc
        assert bundle["replay"]["seed"] == SEED

    def test_check_program_flags_the_mutant_as_unexplained(self,
                                                           mutant_engine):
        program, _ = mutant_engine
        verdict = check_program(program, seed=SEED, profile=PROFILE,
                                engines=("mutant",))
        assert len(verdict.unexplained) == 1
        assert "checksum" in verdict.unexplained[0].fields


class TestAgreementAndFaults:
    def test_agreeing_engines_bisect_to_none(self):
        program = generate_program(2, "alu")
        assert bisect_divergence(program, "threaded", seed=2,
                                 profile="alu") is None

    def test_divergent_fault_attribution(self, mutant_engine):
        """The bundle records both sides' run lengths so a bisected
        divergence on a faulting program stays interpretable."""
        program, _ = mutant_engine
        bundle = bisect_divergence(program, "mutant", seed=SEED,
                                   profile=PROFILE)
        assert bundle.reference_end == bundle.engine_end
        assert bundle.engine == "mutant"
        assert bundle.reference == "interp"
        assert bundle.first_divergent_instruction
