"""The unified telemetry plane: metrics registry, trace spans, worker
spool aggregation, the live ``metrics`` wire verb, and report derivation."""

from __future__ import annotations

import contextlib
import json
import os

import pytest

from repro import obs
from repro.obs import (
    MetricError,
    MetricsRegistry,
    Span,
    SpanSink,
    Telemetry,
    merge_snapshots,
    prometheus_text,
    spans_from_jsonl,
)
from repro.server import (
    GatewayClient,
    WarpGateway,
    close_pooled_clients,
    start_gateway_thread,
)
from repro.service import WarpJob, WarpService
from repro.service.jobs import RESULT_METRIC_FIELDS


@contextlib.contextmanager
def running_gateway(**kwargs):
    kwargs.setdefault("port", 0)
    gateway = WarpGateway(**kwargs)
    thread = start_gateway_thread(gateway)
    try:
        yield gateway
    finally:
        gateway.request_stop()
        thread.join(timeout=30)
        close_pooled_clients()


def _jobs():
    return [
        WarpJob(name="brev-s", benchmark="brev", small=True, priority=2),
        WarpJob(name="matmul-s", benchmark="matmul", small=True),
        WarpJob(name="brev-twin", benchmark="brev", small=True),
    ]


def _family_sum(snapshot, family):
    return sum(s["value"] for s in
               snapshot.get(family, {}).get("samples", []))


def _stage_lookup_totals(snapshot):
    """Per-stage lookup counts summed over sources — mode-invariant:
    whether a stage was served from cache or computed, it is looked up
    exactly once per unique execution."""
    totals = {}
    for sample in snapshot.get("warp_stage_lookups_total",
                               {}).get("samples", []):
        stage = sample["labels"]["stage"]
        totals[stage] = totals.get(stage, 0) + sample["value"]
    return totals


# --------------------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_counter_labels_and_negative_rejection(self):
        reg = MetricsRegistry()
        requests = reg.counter("requests")
        requests.inc(verb="submit")
        requests.inc(2, verb="submit")
        requests.inc(verb="status")
        snap = reg.snapshot()
        by_verb = {s["labels"]["verb"]: s["value"]
                   for s in snap["requests"]["samples"]}
        assert by_verb == {"submit": 3, "status": 1}
        with pytest.raises(MetricError):
            requests.inc(-1, verb="submit")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(MetricError):
            reg.gauge("thing")

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        depth = reg.gauge("depth")
        depth.set(4)
        depth.set(7)  # set semantics: last write wins
        assert reg.snapshot()["depth"]["samples"][0]["value"] == 7
        depth.inc(2)
        assert depth.value() == 9

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        wall = reg.histogram("wall")
        wall.observe(0.0005)
        wall.observe(0.3)
        wall.observe(99.0)  # above every bound -> overflow
        state = reg.snapshot()["wall"]["samples"][0]
        assert state["count"] == 3
        assert sum(state["counts"]) == 3
        assert state["counts"][0] == 1       # <= 0.001
        assert state["counts"][-1] == 1      # +Inf overflow
        assert state["sum"] == pytest.approx(0.3005 + 99.0)

    def test_histogram_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))

    def test_merge_adds_counters_gauges_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs").inc(2, status="ok")
        b.counter("jobs").inc(3, status="ok")
        b.counter("jobs").inc(1, status="error")
        a.gauge("shards").set(1)
        b.gauge("shards").set(1)  # per-process gauges sum to the fleet
        a.histogram("wall", buckets=(1.0,)).observe(0.1)
        b.histogram("wall", buckets=(1.0,)).observe(5.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        jobs = {s["labels"]["status"]: s["value"]
                for s in merged["jobs"]["samples"]}
        assert jobs == {"ok": 5, "error": 1}
        assert merged["shards"]["samples"][0]["value"] == 2
        wall = merged["wall"]["samples"][0]
        assert wall["counts"] == [1, 1] and wall["count"] == 2

    def test_merge_rejects_kind_clash(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(MetricError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("warp_jobs_total").inc(3, engine="jit", status="ok")
        reg.gauge("warp_queue_depth").set(2)
        reg.histogram("warp_job_wall_seconds",
                      buckets=(0.1, 1.0)).observe(0.3)
        text = prometheus_text(reg.snapshot())
        assert '# TYPE warp_jobs_total counter' in text
        assert 'warp_jobs_total{engine="jit",status="ok"} 3' in text
        assert "warp_queue_depth 2" in text
        # histogram buckets are cumulative in the exposition
        assert 'warp_job_wall_seconds_bucket{le="1"} 1' in text
        assert 'warp_job_wall_seconds_bucket{le="+Inf"} 1' in text
        assert "warp_job_wall_seconds_count 1" in text
        # every sample line is `name{labels} value` parseable
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            assert name and float(value) is not None


# --------------------------------------------------------------------------- spans
class TestSpanSink:
    def test_ring_capacity_and_cursor(self):
        sink = SpanSink(capacity=4)
        for i in range(6):
            sink.record(Span(name=f"s{i}", trace_id="t", span_id=str(i),
                             parent_id=None, start_s=float(i),
                             duration_s=0.0))
        assert [s.name for s in sink.snapshot()] == ["s2", "s3", "s4", "s5"]
        cursor, new = sink.since(4)
        assert cursor == 6 and [s.name for s in new] == ["s4", "s5"]
        # stale cursor beyond eviction still yields what the ring holds
        _, tail = sink.since(0)
        assert len(tail) == 4

    def test_jsonl_roundtrip_skips_torn_lines(self, tmp_path):
        sink = SpanSink()
        with obs.active_telemetry():
            with obs.span("outer"):
                with obs.span("inner", step=1):
                    pass
            sink = obs.ACTIVE.spans
            path = tmp_path / "trace.jsonl"
            sink.export_jsonl(path)
        blob = path.read_text() + '{"name": "torn", "trace'
        spans = spans_from_jsonl(blob)
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"step": 1}


# --------------------------------------------------------------------------- gating
class TestDisabledGating:
    def test_helpers_are_noops_without_active_telemetry(self):
        assert obs.ACTIVE is None
        obs.inc("warp_never_total", status="ok")
        obs.set_gauge("warp_never_depth", 3)
        obs.observe("warp_never_wall", 0.5)
        handle = obs.span("never")
        assert handle is obs._NOOP_SPAN
        with handle as bound:
            assert bound is None
        assert obs.ACTIVE is None  # still nothing installed

    def test_active_telemetry_installs_and_restores(self):
        assert obs.ACTIVE is None
        with obs.active_telemetry() as telemetry:
            assert obs.ACTIVE is telemetry
            obs.inc("warp_x_total")
            assert _family_sum(telemetry.snapshot(), "warp_x_total") == 1
        assert obs.ACTIVE is None

    def test_export_requires_spool(self):
        with obs.active_telemetry() as telemetry:
            with pytest.raises(ValueError):
                obs.export_to_environment(telemetry)


# --------------------------------------------------------------------------- serial wiring
class TestServiceTelemetrySerial:
    def test_serial_run_populates_families_and_timelines(self):
        with obs.active_telemetry() as telemetry:
            with WarpService(workers=0) as service:
                report = service.run(_jobs())
            snap = telemetry.snapshot()
        assert report.num_failed == 0
        # jobs/engine accounting: the dedup twin shares the primary's
        # execution, so 3 jobs -> 2 executed
        assert _family_sum(snap, "warp_jobs_total") == 2
        assert _family_sum(snap, "warp_engine_instructions_total") > 0
        assert snap["warp_batches_total"]["samples"][0]["labels"] == \
            {"mode": "serial"}
        assert _family_sum(snap, "warp_scheduler_deduped_total") == 1
        # stage lookups cover the executed flow
        stages = _stage_lookup_totals(snap)
        assert stages and all(count >= 1 for count in stages.values())
        # every result carries its trace id; the dedup twin shares the
        # primary's execution and therefore its trace
        traces = {r.job_name: r.trace_id for r in report.results}
        assert all(traces.values())
        assert traces["brev-twin"] == traces["brev-s"]
        # timeline reconstructs: root job span -> execute -> cad stages
        spans = telemetry.spans.snapshot()
        for trace_id in {traces["brev-s"], traces["matmul-s"]}:
            mine = [s for s in spans if s.trace_id == trace_id]
            by_name = {}
            for span in mine:
                by_name.setdefault(span.name, []).append(span)
            root = by_name["job"][0]
            assert root.parent_id is None and root.span_id == trace_id
            assert by_name["scheduler-wait"][0].parent_id == trace_id
            execute = by_name["execute"][0]
            assert execute.parent_id == trace_id
            assert by_name["cad-stage"], trace_id
            assert all(s.parent_id == execute.span_id
                       for s in by_name["cad-stage"])

    def test_disabled_run_records_nothing(self):
        assert obs.ACTIVE is None
        with WarpService(workers=0) as service:
            report = service.run(_jobs()[:1])
        assert report.num_failed == 0
        assert report.results[0].trace_id is None
        assert obs.ACTIVE is None


# --------------------------------------------------------------------------- cross-process
class TestCrossProcessAggregation:
    def test_pool_worker_metrics_sum_identically_to_serial(self, tmp_path):
        """Satellite: the spool-merged pooled snapshot agrees with a
        serial run on every mode-invariant family (differential)."""
        with obs.active_telemetry() as telemetry:
            with WarpService(workers=0) as service:
                serial_report = service.run(_jobs())
            serial = telemetry.snapshot()

        spool = tmp_path / "spool"
        with obs.active_telemetry(spool_dir=spool, export=True) as telemetry:
            with WarpService(workers=2) as service:
                pooled_report = service.run(_jobs())
            parent_only = telemetry.snapshot()
            pooled = telemetry.collect()

        assert serial_report.num_failed == 0
        assert pooled_report.num_failed == 0
        # workers incremented these in their own processes: the parent
        # registry alone must lack them, the spool merge must have them
        assert "warp_jobs_total" not in parent_only
        assert _family_sum(pooled, "warp_jobs_total") == \
            _family_sum(serial, "warp_jobs_total") == 2
        assert _stage_lookup_totals(pooled) == _stage_lookup_totals(serial)
        assert _family_sum(pooled, "warp_engine_instructions_total") == \
            _family_sum(serial, "warp_engine_instructions_total")
        # worker spans crossed the spool too: full timelines reconstruct
        pooled.get("warp_shard_jobs_total")  # pooled-only family present
        assert "warp_shard_jobs_total" in pooled
        names = {s.name for s in telemetry.spans.snapshot()}
        assert {"job", "shard-dispatch", "execute", "cad-stage"} <= names
        assert obs.ACTIVE is None
        assert obs.SPOOL_ENV_VAR not in os.environ


# --------------------------------------------------------------------------- wire verb
class TestGatewayMetricsVerb:
    def test_metrics_verb_and_queue_depth_in_status(self):
        with running_gateway(workers=0) as gateway:
            with GatewayClient(gateway.address) as client:
                report_reply = client.submit(_jobs()[:2], wait=True)
                reply = client.metrics()
                assert reply["enabled"] is True
                metrics = reply["metrics"]
                assert _family_sum(metrics, "warp_jobs_total") == 2
                assert _family_sum(metrics, "warp_gateway_requests_total") \
                    >= 2
                assert "warp_queue_depth" in metrics
                assert "warp_queue_limit" in metrics
                # queue bookkeeping rides on batch replies (satellite)
                assert reply["queue_depth"] == 0
                assert reply["queue_limit"] == gateway.queue_limit
                # incremental span polling via the cursor
                assert reply["spans"], "first poll returns the backlog"
                cursor = reply["cursor"]
                again = client.metrics(since=cursor)
                # the only news since the cursor is the previous metrics
                # request itself (the verb observes itself too)
                assert {s["name"] for s in again["spans"]} <= \
                    {"gateway:metrics"}
                cursor = again["cursor"]
                client.submit(_jobs()[:1], wait=True)
                fresh = client.metrics(since=cursor)
                assert fresh["spans"], "new work produces new spans"
                assert {s["name"] for s in fresh["spans"]} & \
                    {"job", "execute", "gateway:submit"}
                # spans can be skipped to keep the payload small
                lean = client.metrics(include_spans=False)
                assert lean["spans"] == []
            assert report_reply.num_failed == 0
        # gateway owned the telemetry: teardown uninstalls it
        assert obs.ACTIVE is None
        assert obs.SPOOL_ENV_VAR not in os.environ

    def test_no_telemetry_gateway_reports_disabled(self):
        with running_gateway(workers=0, telemetry=False) as gateway:
            with GatewayClient(gateway.address) as client:
                reply = client.metrics()
                assert reply["enabled"] is False
                assert reply["metrics"] == {}
                # queue keys are plain bookkeeping, present regardless
                assert reply["queue_depth"] == 0
        assert obs.ACTIVE is None


# --------------------------------------------------------------------------- report derivation
class TestReportMetricDerivation:
    def test_report_blocks_derive_from_the_metric_mapping(self):
        """Satellite: cache/resilience report blocks come from one
        mapping, not hand-merged ints."""
        with WarpService(workers=0) as service:
            report = service.run(_jobs())
        totals = report.metrics_totals()
        assert set(totals) == set(RESULT_METRIC_FIELDS)
        assert totals["cache.hits"] == report.cache_hits
        assert totals["resilience.retries"] == report.total_retries
        plain = report.to_plain()
        assert set(plain["cache"]) == \
            {key.split(".", 1)[1] for key in RESULT_METRIC_FIELDS
             if key.startswith("cache.")} | {"hit_rate"}
        assert plain["resilience"] == report.metrics_block("resilience")
        # per-result metric snapshot mirrors the same mapping
        first = report.results[0].metrics_snapshot()
        assert set(first) == set(RESULT_METRIC_FIELDS)
