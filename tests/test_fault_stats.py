"""Fault-path statistics: the opt-in precise mode of the threaded engine.

The threaded engine applies a superblock's statistics wholesale, so a
runtime fault landing mid-block can leave statistics ahead of the
interpreter's by up to one block (a documented divergence since PR 1).
With ``precise_fault_stats=True`` the block compiler emits per-handler
statistics translations instead; these tests assert that a fault landing
mid-block then leaves *identical* statistics, registers, pc and imm-latch
state to the reference interpreter — and that fault-free runs stay
bit-exact in precise mode.
"""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.microblaze import (
    MINIMAL_CONFIG,
    PAPER_CONFIG,
    IllegalInstruction,
    MemoryError_,
    MicroBlazeSystem,
)

#: A misaligned word load (address 9) landing mid-superblock: three
#: completed instructions before it, live instructions after it, one
#: straight-line block ending in the halt branch.
MISALIGNED_MID_BLOCK = """
    addi r5, r0, 8
    addi r6, r0, 1
    add  r7, r5, r6        # r7 = 9: misaligned
    addi r8, r0, 3
    lw   r9, r7, r0        # faults here, mid-block
    addi r10, r0, 99       # must never execute
    bri  0
"""

#: The faulting load's address is computed through a fused imm prefix, so
#: the interpreter faults with the imm latch *set*.
MISALIGNED_AFTER_IMM = """
    addi r5, r0, 1
    imm  0
    lwi  r9, r5, 8         # address 9 via imm-fused immediate: faults
    bri  0
"""

#: A misaligned store in the delay slot of a taken branch: the interpreter
#: records neither the slot nor the branch.
MISALIGNED_IN_DELAY_SLOT = """
    addi r5, r0, 6
    addi r6, r0, 1
    brid 12                # taken, delay slot executes
    sw   r6, r5, r0        # misaligned store at 6: faults in the slot
    addi r7, r0, 1
    bri  0
"""


def _run_to_fault(source, engine, precise=False, config=PAPER_CONFIG,
                  exception=MemoryError_):
    program = assemble(source, name="faulty")
    system = MicroBlazeSystem(config=config, engine=engine,
                              precise_fault_stats=precise)
    with pytest.raises(exception) as info:
        system.run(program)
    cpu = system.cpu
    return {
        "stats": cpu.stats,
        "registers": list(cpu.registers),
        "pc": cpu.pc,
        "imm_latch": cpu._imm_latch,
        "message": str(info.value),
    }


def _assert_fault_state_equal(reference, observed):
    assert observed["stats"] == reference["stats"]
    assert observed["registers"] == reference["registers"]
    assert observed["pc"] == reference["pc"]
    assert observed["imm_latch"] == reference["imm_latch"]
    assert observed["message"] == reference["message"]


class TestPreciseFaultStats:
    def test_misaligned_fault_mid_block_matches_interpreter(self):
        """The differential test of the ISSUE: a misaligned access landing
        mid-block leaves interpreter-identical statistics in precise mode."""
        interp = _run_to_fault(MISALIGNED_MID_BLOCK, "interp")
        precise = _run_to_fault(MISALIGNED_MID_BLOCK, "threaded", precise=True)
        _assert_fault_state_equal(interp, precise)
        # The interpreter charged exactly the four completed instructions.
        assert interp["stats"].instructions == 4

    def test_default_mode_documents_the_divergence(self):
        """Without the flag the wholesale-block accounting is visible (this
        is the documented PR 1 behaviour the flag closes)."""
        interp = _run_to_fault(MISALIGNED_MID_BLOCK, "interp")
        plain = _run_to_fault(MISALIGNED_MID_BLOCK, "threaded", precise=False)
        # Architectural state stays identical even without the flag...
        assert plain["registers"] == interp["registers"]
        assert plain["message"] == interp["message"]
        # ...but the wholesale statistics ran ahead of the fault point.
        assert plain["stats"].instructions > interp["stats"].instructions

    def test_fault_with_pending_imm_latch(self):
        interp = _run_to_fault(MISALIGNED_AFTER_IMM, "interp")
        precise = _run_to_fault(MISALIGNED_AFTER_IMM, "threaded", precise=True)
        _assert_fault_state_equal(interp, precise)
        # The imm prefix itself was recorded before the fault.
        assert interp["stats"].instructions == 2

    def test_fault_in_delay_slot(self):
        interp = _run_to_fault(MISALIGNED_IN_DELAY_SLOT, "interp")
        precise = _run_to_fault(MISALIGNED_IN_DELAY_SLOT, "threaded",
                                precise=True)
        _assert_fault_state_equal(interp, precise)
        # Neither the branch nor the slot is recorded by the interpreter.
        assert interp["stats"].branches_taken == 0

    def test_missing_unit_fault(self):
        """Compile-time-detected faults (absent hardware unit) also leave
        identical state in precise mode."""
        source = """
            addi r5, r0, 3
            addi r6, r0, 4
            mul  r7, r5, r6       # no multiplier in MINIMAL_CONFIG
            bri  0
        """
        interp = _run_to_fault(source, "interp", config=MINIMAL_CONFIG,
                               exception=IllegalInstruction)
        precise = _run_to_fault(source, "threaded", precise=True,
                                config=MINIMAL_CONFIG,
                                exception=IllegalInstruction)
        _assert_fault_state_equal(interp, precise)

    @pytest.mark.parametrize("name", ["brev", "canrdr", "idct"])
    def test_fault_free_runs_stay_bit_exact(self, name,
                                            compiled_small_programs):
        """Precise mode must not perturb fault-free execution at all."""
        program = compiled_small_programs[name]
        reference = MicroBlazeSystem(config=PAPER_CONFIG,
                                     engine="interp").run(program)
        precise = MicroBlazeSystem(config=PAPER_CONFIG, engine="threaded",
                                   precise_fault_stats=True).run(program)
        assert precise.stats == reference.stats
        assert precise.return_value == reference.return_value
        assert precise.data_image == reference.data_image
