"""Shared fixtures for the test suite.

Heavy artifacts (compiled benchmark programs, warp runs) are cached at
session scope so the many tests that need "a compiled benchmark" do not
each pay for compilation and simulation again.
"""

from __future__ import annotations

import pytest

from repro.apps import build_benchmark
from repro.compiler import compile_source
from repro.microblaze import PAPER_CONFIG


@pytest.fixture(scope="session")
def small_benchmarks():
    """Small instances of all six benchmarks, keyed by name."""
    from repro.apps import build_suite

    return {bench.name: bench for bench in build_suite(small=True)}


@pytest.fixture(scope="session")
def compiled_small_programs(small_benchmarks):
    """Compiled (paper configuration) program images of the small suite."""
    programs = {}
    for name, bench in small_benchmarks.items():
        programs[name] = compile_source(bench.source, name=name,
                                        config=PAPER_CONFIG).program
    return programs


@pytest.fixture(scope="session")
def warp_small_results(compiled_small_programs):
    """Warp-processing results for the small suite (computed once)."""
    from repro.warp import WarpProcessor

    processor = WarpProcessor(config=PAPER_CONFIG)
    return {name: processor.run(program.copy())
            for name, program in compiled_small_programs.items()}
