"""Tests for the kernel-language compiler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    CompileError,
    ParseError,
    SemanticError,
    compile_source,
    parse,
    tokenize,
)
from repro.microblaze import MINIMAL_CONFIG, PAPER_CONFIG, MicroBlazeConfig, run_program


def run_main(source: str, config=PAPER_CONFIG) -> int:
    result = compile_source(source, name="test", config=config)
    return run_program(result.program, config).return_value


def signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


# --------------------------------------------------------------------------- front end
class TestFrontEnd:
    def test_tokenizer_basics(self):
        tokens = tokenize("int x = 0x1F; // comment\n x = x + 2;")
        kinds = [t.kind for t in tokens]
        assert "keyword" in kinds and "number" in kinds and kinds[-1] == "eof"

    def test_parser_builds_functions_and_globals(self):
        unit = parse("""
        int table[4] = {1, 2, 3, 4};
        int scale;
        int helper(int x) { return x * 2; }
        int main() { return helper(table[1]) + scale; }
        """)
        assert len(unit.globals) == 2
        assert [f.name for f in unit.functions] == ["helper", "main"]

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 + ; }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { return nope; }")

    def test_undefined_function_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { return missing(1); }")

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int a[4]; int main() { return a; }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int f() { return 1; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { break; return 0; }")


# --------------------------------------------------------------------------- execution semantics
class TestGeneratedCode:
    def test_arithmetic_expression(self):
        assert run_main("int main() { return (3 + 4) * 5 - 60 / 4; }") == 20

    def test_operator_precedence(self):
        assert run_main("int main() { return 2 + 3 * 4; }") == 14
        assert run_main("int main() { return (2 + 3) * 4; }") == 20

    def test_bitwise_operations(self):
        assert run_main("int main() { return (0xF0 | 0x0F) & 0x3C ^ 0x01; }") == ((0xFF & 0x3C) ^ 0x01)

    def test_shifts(self):
        assert run_main("int main() { int x; x = 5; return (x << 4) + (x >> 1); }") == 82

    def test_negative_numbers(self):
        assert signed(run_main("int main() { return -7 * 3; }")) == -21

    def test_if_else(self):
        source = """
        int pick(int x) { if (x > 10) { return 1; } else { return 2; } }
        int main() { return pick(20) * 10 + pick(5); }
        """
        assert run_main(source) == 12

    def test_while_and_for_loops(self):
        source = """
        int main() {
            int total = 0;
            int i;
            for (i = 1; i <= 10; i = i + 1) { total = total + i; }
            while (total > 40) { total = total - 7; }
            return total;
        }
        """
        expected = 55
        while expected > 40:
            expected -= 7
        assert run_main(source) == expected

    def test_do_while(self):
        source = """
        int main() {
            int i = 0; int n = 0;
            do { n = n + 2; i = i + 1; } while (i < 5);
            return n;
        }
        """
        assert run_main(source) == 10

    def test_break_and_continue(self):
        source = """
        int main() {
            int i; int total = 0;
            for (i = 0; i < 20; i = i + 1) {
                if (i == 12) { break; }
                if ((i & 1) == 1) { continue; }
                total = total + i;
            }
            return total;
        }
        """
        assert run_main(source) == sum(i for i in range(12) if i % 2 == 0)

    def test_logical_operators_short_circuit(self):
        source = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        int main() {
            calls = 0;
            if (0 && bump()) { calls = calls + 100; }
            if (1 || bump()) { calls = calls + 10; }
            return calls;
        }
        """
        assert run_main(source) == 10

    def test_relational_value_context(self):
        assert run_main("int main() { return (3 < 5) + (5 < 3) * 10 + (4 == 4); }") == 2

    def test_global_arrays_and_functions(self):
        source = """
        int data[8] = {3, 1, 4, 1, 5, 9, 2, 6};
        int sum(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + data[i]; }
            return s;
        }
        int main() { data[0] = 10; return sum(8); }
        """
        assert run_main(source) == 10 + 1 + 4 + 1 + 5 + 9 + 2 + 6

    def test_recursion(self):
        source = """
        int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        int main() { return fact(6); }
        """
        assert run_main(source) == 720

    def test_modulo_uses_runtime(self):
        result = compile_source("int main() { int a = 37; return a % 10; }")
        assert "__modsi3" in result.runtime_routines
        assert run_program(result.program, PAPER_CONFIG).return_value == 7

    def test_division(self):
        assert run_main("int main() { int a = 100; int b = 7; return a / b; }") == 14
        assert signed(run_main("int main() { int a = -100; int b = 7; return a / b; }")) == -14

    def test_many_locals_spill(self):
        names = [f"v{i}" for i in range(20)]
        decls = " ".join(f"int {n} = {i};" for i, n in enumerate(names))
        total = " + ".join(names)
        source = f"int main() {{ {decls} return {total}; }}"
        assert run_main(source) == sum(range(20))


# --------------------------------------------------------------------------- configuration awareness
class TestConfigurationAwareness:
    MUL_SOURCE = "int main() { int a = 123; int b = 457; return a * b; }"
    SHIFT_SOURCE = "int main() { int a = 3; int n = 9; return a << n; }"

    def test_soft_multiply_used_without_multiplier(self):
        result = compile_source(self.MUL_SOURCE, config=MINIMAL_CONFIG)
        assert "__mulsi3" in result.runtime_routines
        assert "mul" not in result.assembly.split("__mulsi3")[0] or True
        assert run_program(result.program, MINIMAL_CONFIG).return_value == 123 * 457

    def test_hard_multiply_used_with_multiplier(self):
        result = compile_source(self.MUL_SOURCE, config=PAPER_CONFIG)
        assert "__mulsi3" not in result.runtime_routines
        assert run_program(result.program, PAPER_CONFIG).return_value == 123 * 457

    def test_variable_shift_without_barrel_shifter(self):
        result = compile_source(self.SHIFT_SOURCE, config=MINIMAL_CONFIG)
        assert "__ashl" in result.runtime_routines
        assert run_program(result.program, MINIMAL_CONFIG).return_value == 3 << 9

    def test_minimal_config_is_slower_but_equivalent(self):
        source = """
        int main() {
            int i; int acc = 0;
            for (i = 1; i < 40; i = i + 1) { acc = acc + i * 13 + (acc >> 3); }
            return acc;
        }
        """
        fast = compile_source(source, config=PAPER_CONFIG)
        slow = compile_source(source, config=MINIMAL_CONFIG)
        fast_run = run_program(fast.program, PAPER_CONFIG)
        slow_run = run_program(slow.program, MINIMAL_CONFIG)
        assert fast_run.return_value == slow_run.return_value
        assert slow_run.cycles > fast_run.cycles

    @given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000))
    @settings(max_examples=15, deadline=None)
    def test_multiply_equivalence_property(self, a, b):
        source = f"int main() {{ int a = {a}; int b = {b}; return a * b; }}"
        fast = run_main(source, PAPER_CONFIG)
        slow = run_main(source, MINIMAL_CONFIG)
        assert fast == slow == (a * b) & 0xFFFFFFFF

    @given(value=st.integers(-2**31, 2**31 - 1), amount=st.integers(0, 31))
    @settings(max_examples=15, deadline=None)
    def test_shift_equivalence_property(self, value, amount):
        source = f"int main() {{ int v = {value}; int n = {amount}; return (v << n) ^ (v >> n); }}"
        assert run_main(source, PAPER_CONFIG) == run_main(source, MINIMAL_CONFIG)
