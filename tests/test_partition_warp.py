"""Tests for the dynamic partitioning module, binary patching, and the warp
processor (single- and multi-core)."""

from __future__ import annotations

import pytest

from repro.apps import benchmark_names
from repro.decompile import decompile_and_extract
from repro.fabric import DEFAULT_WCLA
from repro.isa import decode
from repro.microblaze import PAPER_CONFIG, run_program
from repro.partition import (
    DpmCostModel,
    DynamicPartitioningModule,
    apply_patch,
    undo_patch,
)
from repro.profiler import OnChipProfiler
from repro.warp import MultiProcessorWarpSystem, WarpProcessor


def _profile(program):
    profiler = OnChipProfiler()
    result = run_program(program, PAPER_CONFIG, listeners=[profiler])
    return result, profiler.most_critical_region()


# --------------------------------------------------------------------------- binary patching
class TestBinaryPatching:
    def test_patch_and_undo_roundtrip(self, compiled_small_programs):
        program = compiled_small_programs["brev"].copy()
        original_words = list(program.text)
        _, region = _profile(program)
        kernel = decompile_and_extract(program.text, region)
        patch = apply_patch(program, kernel)
        assert program.text != original_words
        assert len(program.text) == len(original_words) + patch.stub_instructions
        # The loop header now branches to the stub.
        header = decode(program.word_at(patch.header_address))
        assert header.mnemonic == "brai"
        assert header.imm == patch.stub_address
        undo_patch(program, patch)
        assert program.text == original_words

    def test_stub_structure(self, compiled_small_programs):
        program = compiled_small_programs["matmul"].copy()
        _, region = _profile(program)
        kernel = decompile_and_extract(program.text, region)
        patch = apply_patch(program, kernel)
        stub = [decode(word) for word in patch.stub_words]
        mnemonics = [instr.mnemonic for instr in stub]
        assert mnemonics[0] == "imm"
        assert mnemonics[-1] == "brai"
        assert mnemonics.count("swi") == len(patch.live_in_registers) + 1
        assert mnemonics.count("lwi") == len(patch.live_out_registers)
        assert patch.invocation_opb_accesses >= 3


# --------------------------------------------------------------------------- DPM
class TestDynamicPartitioningModule:
    def test_successful_partitioning(self, compiled_small_programs):
        program = compiled_small_programs["canrdr"].copy()
        _, region = _profile(program)
        dpm = DynamicPartitioningModule()
        outcome = dpm.partition(program, region)
        assert outcome.success
        assert outcome.implementation is not None
        assert outcome.patch is not None
        assert outcome.dpm_seconds > 0
        assert "kernel" in outcome.summary()

    def test_no_region_is_rejected_gracefully(self, compiled_small_programs):
        program = compiled_small_programs["brev"].copy()
        outcome = DynamicPartitioningModule().partition(program, None)
        assert not outcome.success
        assert "profiler" in outcome.reason

    def test_cost_model_scales_with_problem_size(self):
        model = DpmCostModel()
        assert model.fixed_overhead_cycles > 0
        assert model.clock_mhz == pytest.approx(85.0)


# --------------------------------------------------------------------------- warp processor
class TestWarpProcessor:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_warp_preserves_functionality(self, name, warp_small_results,
                                          small_benchmarks):
        result = warp_small_results[name]
        expected = small_benchmarks[name].expected_checksum & 0xFFFFFFFF
        assert result.software_result.return_value == expected
        assert result.checksums_match

    @pytest.mark.parametrize("name", benchmark_names())
    def test_warp_partitions_every_benchmark(self, name, warp_small_results):
        assert warp_small_results[name].partitioning.success

    def test_warp_speeds_up_every_benchmark(self, warp_small_results):
        for name, result in warp_small_results.items():
            assert result.speedup > 1.0, f"{name} did not speed up"

    def test_hardware_actually_used(self, warp_small_results):
        for result in warp_small_results.values():
            assert result.hw_invocations >= 1
            assert result.hw_iterations >= result.hw_invocations
            assert result.hw_cycles > 0
            assert result.hw_clock_mhz > 0

    def test_warp_time_decomposition(self, warp_small_results):
        for result in warp_small_results.values():
            assert result.warp_seconds == pytest.approx(
                result.microblaze_seconds + result.hw_seconds)
            assert 0.0 <= result.kernel_time_fraction <= 1.0
            assert "speedup" in result.summary()

    def test_brev_has_largest_speedup(self, warp_small_results):
        speedups = {name: result.speedup
                    for name, result in warp_small_results.items()}
        assert max(speedups, key=speedups.get) == "brev"


# --------------------------------------------------------------------------- multiprocessor
class TestMultiProcessor:
    def test_shared_dpm_round_robin(self, compiled_small_programs):
        programs = [compiled_small_programs["brev"].copy(),
                    compiled_small_programs["canrdr"].copy()]
        system = MultiProcessorWarpSystem(num_cores=2)
        result = system.run(programs)
        assert result.num_cores == 2
        assert len(result.schedule) == 2
        # Round-robin: the second kernel waits for the first on the single DPM.
        assert result.schedule[1].dpm_start_seconds >= \
            result.schedule[0].dpm_finish_seconds - 1e-12
        assert result.average_speedup > 1.0
        assert result.fabric_fits_all_kernels
        assert "core" in result.summary()

    def test_two_dpms_halve_the_wait(self, compiled_small_programs):
        programs = [compiled_small_programs["brev"].copy(),
                    compiled_small_programs["canrdr"].copy()]
        one = MultiProcessorWarpSystem(num_cores=2, num_dpm_modules=1).run(
            [p.copy() for p in programs])
        two = MultiProcessorWarpSystem(num_cores=2, num_dpm_modules=2).run(
            [p.copy() for p in programs])
        assert two.last_core_served_seconds <= one.last_core_served_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiProcessorWarpSystem(num_cores=0)
        with pytest.raises(ValueError):
            MultiProcessorWarpSystem(num_cores=1).run([None, None])


class TestDpmSchedule:
    """Round-robin DPM schedule invariants (ISSUE 2 satellite)."""

    def test_single_dpm_schedule_is_contiguous_and_ordered(
            self, compiled_small_programs):
        programs = [compiled_small_programs["brev"].copy(),
                    compiled_small_programs["canrdr"].copy(),
                    compiled_small_programs["matmul"].copy()]
        result = MultiProcessorWarpSystem(num_cores=3).run(programs)
        assert len(result.schedule) == 3

        # Cores are served in round-robin (submission) order...
        assert [item.core_index for item in result.schedule] == [0, 1, 2]
        # ...the first core is served immediately...
        assert result.schedule[0].dpm_start_seconds == 0.0
        # ...and with a single DPM the service intervals are contiguous:
        # each core's partitioning starts the instant the previous one ends.
        for earlier, later in zip(result.schedule, result.schedule[1:]):
            assert later.dpm_start_seconds == pytest.approx(
                earlier.dpm_finish_seconds)
        for item in result.schedule:
            assert item.dpm_finish_seconds > item.dpm_start_seconds
            assert item.dpm_service_seconds == pytest.approx(
                item.dpm_finish_seconds - item.dpm_start_seconds)

    def test_core_keeps_software_timing_until_served(
            self, compiled_small_programs):
        programs = [compiled_small_programs["brev"].copy(),
                    compiled_small_programs["canrdr"].copy()]
        result = MultiProcessorWarpSystem(num_cores=2).run(programs)
        # A partitioned core runs its original (software) binary exactly
        # until the DPM finishes serving it.
        for item in result.schedule:
            assert result.software_phase_seconds(item.core_index) \
                == pytest.approx(item.dpm_finish_seconds)
        # Later cores wait longer for the shared DPM than earlier ones.
        assert result.software_phase_seconds(1) \
            > result.software_phase_seconds(0)

    def test_unpartitioned_core_stays_in_software_for_the_whole_run(self):
        from repro.isa.assembler import assemble
        # A loop-free program: the profiler finds no critical region, the
        # DPM never serves this core, and it keeps software timing for its
        # entire execution.
        flat = assemble("""
            addi r3, r0, 7
            bri  0
        """, name="flat")
        result = MultiProcessorWarpSystem(num_cores=1).run([flat])
        assert not result.per_core[0].partitioning.success
        assert result.schedule == []
        assert result.software_phase_seconds(0) \
            == pytest.approx(result.per_core[0].software_seconds)

    def test_two_dpms_overlap_service_intervals(self,
                                                compiled_small_programs):
        programs = [compiled_small_programs["brev"].copy(),
                    compiled_small_programs["canrdr"].copy()]
        result = MultiProcessorWarpSystem(
            num_cores=2, num_dpm_modules=2).run(programs)
        # With one DPM per core both kernels are served immediately.
        assert all(item.dpm_start_seconds == 0.0
                   for item in result.schedule)
