"""Registry-wide differential harness: observations, known-divergence
classification, campaign aggregation and the ``warp_fuzz_*`` telemetry."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.fuzz import (
    check_program,
    classify_divergence,
    generate_program,
    observe,
    run_campaign,
)
from repro.fuzz.harness import (
    KNOWN_FAULT_SKEW_FIELDS,
    KNOWN_PRECISE_FAULT_SKEW_FIELDS,
    compare_observations,
)
from repro.isa import assemble
from repro.microblaze import engine_names

#: A fault landing inside a hot loop's block: the canonical source of the
#: ROADMAP's documented default-mode statistics skew (mirrors
#: ``test_engine_differential.MISALIGNED_IN_HOT_LOOP``).
FAULT_AFTER_HOT_LOOP = """
    addi r5, r0, 64
    addi r3, r0, 0
loop:
    addi r3, r3, 1
    addi r5, r5, -1
    bnei r5, loop
    addi r3, r3, 3
    lw   r9, r3, r0        # 67: misaligned -> MemoryError_
    bri  0
"""


class TestObserve:
    def test_halting_program_produces_full_observation(self):
        program = generate_program(0, "mixed")
        observation = observe(program, "interp")
        assert observation.outcome == "halted"
        assert observation.error is None
        assert observation.stats["instructions"] > 0
        comparable = observation.comparable()
        assert set(comparable) == {
            "outcome", "checksum", "registers", "pc", "data", "stats",
            "instr_ports", "data_ports", "opb", "profiler"}

    def test_fault_is_an_observation_not_an_error(self):
        program = assemble(FAULT_AFTER_HOT_LOOP, name="faulty")
        observation = observe(program, "interp")
        assert observation.outcome == "fault"
        assert "MemoryError_" in observation.error

    def test_identical_engines_have_no_differing_fields(self):
        program = generate_program(1, "mixed")
        assert compare_observations(observe(program, "interp"),
                                    observe(program, "interp")) == ()


class TestKnownDivergenceClassification:
    def test_default_mode_stats_skew_is_known(self):
        assert classify_divergence(
            ("stats", "profiler", "pc"), precise_fault_stats=False,
            reference_outcome="fault", engine_outcome="fault")

    def test_architectural_fields_are_never_known(self):
        for poisoned in ("registers", "checksum", "data", "outcome", "opb"):
            assert not classify_divergence(
                ("stats", poisoned), precise_fault_stats=False,
                reference_outcome="fault", engine_outcome="fault")

    def test_non_fault_runs_are_never_known(self):
        assert not classify_divergence(
            ("stats",), precise_fault_stats=False,
            reference_outcome="halted", engine_outcome="halted")
        assert not classify_divergence(
            ("stats",), precise_fault_stats=False,
            reference_outcome="fault", engine_outcome="halted")

    def test_precise_mode_allows_only_instruction_port_lookahead(self):
        assert classify_divergence(
            ("instr_ports",), precise_fault_stats=True,
            reference_outcome="fault", engine_outcome="fault")
        assert not classify_divergence(
            ("stats",), precise_fault_stats=True,
            reference_outcome="fault", engine_outcome="fault")
        assert KNOWN_PRECISE_FAULT_SKEW_FIELDS < KNOWN_FAULT_SKEW_FIELDS

    def test_mid_block_fault_divergences_classify_as_known(self):
        """The real thing end to end: a fault in a hot loop, both precise
        modes, every registered engine — whatever skew appears must match
        a documented shape, never an architectural difference."""
        program = assemble(FAULT_AFTER_HOT_LOOP, name="faulty")
        verdict = check_program(program, seed=0, profile="handwritten",
                                precise_modes=(False, True))
        assert verdict.unexplained == []
        for divergence in verdict.divergences:
            allowed = KNOWN_PRECISE_FAULT_SKEW_FIELDS \
                if divergence.precise_fault_stats else KNOWN_FAULT_SKEW_FIELDS
            assert set(divergence.fields) <= allowed


class TestCampaign:
    def test_small_campaign_is_divergence_free(self):
        report = run_campaign(3, profile="mixed")
        assert report.programs == 3
        assert report.unexplained_divergences == 0
        assert report.instructions > 0
        assert report.engines == engine_names()

    def test_faulty_campaign_counts_known_divergences(self):
        report = run_campaign(2, profile="faulty",
                              precise_modes=(False, True))
        assert report.unexplained_divergences == 0
        assert report.known_divergences > 0
        assert report.bundles == []  # known shapes are not bisected

    def test_time_budget_stops_at_a_program_boundary(self):
        report = run_campaign(10_000, profile="alu", time_budget_s=0.0)
        assert report.programs == 0

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError, match="count must be positive"):
            run_campaign(0)

    def test_to_plain_carries_throughput(self):
        report = run_campaign(2, profile="alu")
        plain = report.to_plain()
        assert plain["programs"] == 2
        assert plain["programs_per_second"] > 0
        assert plain["instructions_per_second"] > 0


class TestTelemetry:
    def test_campaign_publishes_warp_fuzz_families(self):
        with obs.active_telemetry() as telemetry:
            run_campaign(2, profile="faulty", bisect_divergences=False)
            snapshot = telemetry.collect()
        assert snapshot["warp_fuzz_programs_total"]["samples"][0]["value"] \
            == 2.0
        assert "warp_fuzz_instructions_total" in snapshot
        divergences = snapshot["warp_fuzz_divergences_total"]["samples"]
        assert divergences, "faulty profile must record known divergences"
        assert {sample["labels"]["kind"] for sample in divergences} \
            == {"known"}

    def test_campaign_without_telemetry_records_nothing(self):
        assert obs.ACTIVE is None
        report = run_campaign(1, profile="alu")
        assert report.programs == 1
