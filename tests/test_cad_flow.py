"""The staged CAD flow: pass pipeline, per-stage caching, bit-exactness.

Covers the ISSUE 3 acceptance criteria: the staged flow must produce
outcomes bit-identical to the monolithic flow on every cache path
(uncached, cold, whole-bundle warm, per-stage warm), a routing-only WCLA
sweep must reuse synthesis and placement via stage-level cache entries,
capacity rejections must be memoized with a distinct counter, and
alternate passes must be swappable through the stage registry.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cad import (
    DEFAULT_STAGE_NAMES,
    CadArtifactCache,
    DpmCostModel,
    RouteStage,
    available_stage_names,
    build_flow,
    register_stage,
)
from repro.fabric import DEFAULT_WCLA
from repro.microblaze import PAPER_CONFIG, run_program
from repro.partition import DynamicPartitioningModule
from repro.profiler import OnChipProfiler
from repro.service import ServiceReport, WarpJob, execute_job
from repro.warp import WarpProcessor

GREEDY_STAGES = ("decompile", "synthesis", "place", "route-greedy",
                 "implement", "binary-update")


def _fabric_variant(**overrides):
    return dataclasses.replace(
        DEFAULT_WCLA,
        fabric=dataclasses.replace(DEFAULT_WCLA.fabric, **overrides))


@pytest.fixture(scope="module")
def profiled(compiled_small_programs):
    """(program, critical region) per benchmark, profiled once."""
    out = {}
    for name, program in compiled_small_programs.items():
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, listeners=[profiler])
        out[name] = (program, profiler.most_critical_region())
    return out


def _sources(outcome):
    return {record.stage: record.source for record in outcome.stage_records}


def _assert_outcomes_match(a, b):
    assert a.success and b.success
    assert a.dpm_seconds == b.dpm_seconds
    assert a.kernel.summary() == b.kernel.summary()
    assert a.synthesis.summary() == b.synthesis.summary()
    assert a.implementation.summary() == b.implementation.summary()
    assert a.placement.total_wirelength == b.placement.total_wirelength
    assert a.routing.total_segments_used == b.routing.total_segments_used
    assert a.patch.stub_words == b.patch.stub_words


# --------------------------------------------------------------------------- registry
class TestRegistry:
    def test_default_flow_matches_the_paper_pipeline(self):
        assert DEFAULT_STAGE_NAMES == ("decompile", "synthesis", "place",
                                       "route", "implement", "binary-update")
        assert build_flow().stage_names() == list(DEFAULT_STAGE_NAMES)

    def test_alternates_are_registered(self):
        names = available_stage_names()
        assert "route" in names and "route-greedy" in names

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown CAD stage"):
            build_flow(("decompile", "no-such-stage"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_stage("route", RouteStage)

    def test_flow_variants_have_distinct_bundle_identities(self):
        assert build_flow().bundle_token() \
            != build_flow(GREEDY_STAGES).bundle_token()


# --------------------------------------------------------------------------- bit-exactness
class TestBitExactEquivalence:
    def test_all_cache_paths_match_the_uncached_flow(self, profiled,
                                                     warp_small_results):
        """Every suite benchmark, every cache path: identical artifacts and
        identical modelled dpm_seconds (the ISSUE 3 differential)."""
        for name, (program, region) in profiled.items():
            reference = warp_small_results[name].partitioning  # uncached
            cache = CadArtifactCache()
            dpm = DynamicPartitioningModule(artifact_cache=cache)
            cold = dpm.partition(program.copy(), region)
            warm = dpm.partition(program.copy(), region)

            staged_cache = CadArtifactCache(bundle_fast_path=False)
            staged_dpm = DynamicPartitioningModule(artifact_cache=staged_cache)
            staged_cold = staged_dpm.partition(program.copy(), region)
            staged_warm = staged_dpm.partition(program.copy(), region)

            for outcome in (cold, warm, staged_cold, staged_warm):
                _assert_outcomes_match(reference, outcome)

            assert not cold.cad_cache_hit
            assert warm.cad_cache_hit
            assert _sources(warm)["synthesis"] == "bundle"
            # With the bundle fast path off, the warm run is a full chain
            # of per-stage hits — and still counts as served from cache.
            assert staged_warm.cad_cache_hit
            assert all(_sources(staged_warm)[stage] == "hit"
                       for stage in ("synthesis", "place", "route",
                                     "implement"))

    def test_dpm_seconds_equals_the_closed_form_cost_model(self,
                                                           warp_small_results):
        """The per-stage cycle contributions sum to exactly the monolithic
        cost-model formula."""
        model = DpmCostModel()
        for result in warp_small_results.values():
            outcome = result.partitioning
            assert outcome.dpm_seconds == model.partitioning_seconds(
                outcome.kernel, outcome.synthesis, outcome.placement,
                outcome.routing)

    def test_stage_records_cover_the_whole_flow(self, warp_small_results):
        for result in warp_small_results.values():
            records = result.partitioning.stage_records
            assert [record.stage for record in records] \
                == list(DEFAULT_STAGE_NAMES)
            assert all(record.wall_seconds >= 0.0 for record in records)
            # No cache was attached: every stage executed uncached.
            assert {record.source for record in records} == {"uncached"}


# --------------------------------------------------------------------------- partial reuse
class TestPartialStageReuse:
    def test_routing_only_sweep_reuses_synthesis_and_placement(self,
                                                               profiled):
        """ISSUE 3 satellite: a WCLA sweep varying a routing-only parameter
        re-runs only routing+implementation."""
        program, region = profiled["idct"]
        cache = CadArtifactCache()
        base = DynamicPartitioningModule(
            artifact_cache=cache).partition(program.copy(), region)
        assert base.success

        narrow = _fabric_variant(channel_width=6)
        swept = DynamicPartitioningModule(
            wcla=narrow, artifact_cache=cache).partition(program.copy(),
                                                         region)
        sources = _sources(swept)
        assert sources["synthesis"] == "hit"
        assert sources["place"] == "hit"
        assert sources["route"] == "miss"
        assert sources["implement"] == "miss"
        counters = cache.stage_counters()
        assert counters["synthesis"] == (1, 1)
        assert counters["place"] == (1, 1)
        assert counters["route"] == (0, 2)

        # The partially reused outcome is identical to a fully cold flow
        # at the swept parameters.
        cold = DynamicPartitioningModule(wcla=narrow).partition(
            program.copy(), region)
        _assert_outcomes_match(cold, swept)

        # An exact repeat of the swept parameters now takes the bundle
        # fast path.
        again = DynamicPartitioningModule(
            wcla=narrow, artifact_cache=cache).partition(program.copy(),
                                                         region)
        assert again.cad_cache_hit
        assert _sources(again)["route"] == "bundle"

    def test_lut_inputs_change_invalidates_from_synthesis_down(self,
                                                               profiled):
        program, region = profiled["idct"]
        cache = CadArtifactCache()
        DynamicPartitioningModule(artifact_cache=cache).partition(
            program.copy(), region)

        wider = _fabric_variant(lut_inputs=4)
        swept = DynamicPartitioningModule(
            wcla=wider, artifact_cache=cache).partition(program.copy(),
                                                        region)
        sources = _sources(swept)
        assert all(sources[stage] == "miss"
                   for stage in ("synthesis", "place", "route", "implement"))


# --------------------------------------------------------------------------- capacity rejections
class TestCapacityRejectionMemoization:
    def test_repeat_rejection_skips_synthesis_and_placement(self, profiled):
        """ISSUE 3 satellite: an over-capacity kernel fails from the cache
        on repeats instead of re-running synthesis+placement."""
        program, region = profiled["matmul"]
        tiny = _fabric_variant(rows=2, columns=2)
        cache = CadArtifactCache()
        dpm = DynamicPartitioningModule(wcla=tiny, artifact_cache=cache)

        first = dpm.partition(program.copy(), region)
        assert not first.success
        assert "fabric out of CLB sites" in first.reason
        assert cache.negative_hits == 0

        second = dpm.partition(program.copy(), region)
        assert not second.success
        assert second.reason == first.reason
        sources = _sources(second)
        assert sources["synthesis"] == "hit"
        assert sources["place"] == "negative-hit"
        assert cache.negative_hits == 1
        assert cache.stage_counters()["synthesis"] == (1, 1)
        # The rejection short-circuits the flow: nothing downstream ran.
        assert [record.stage for record in second.stage_records] \
            == ["decompile", "synthesis", "place"]

    def test_nonfitting_placement_counts_one_negative_per_repeat(
            self, profiled):
        """The fits==False flavor: placement completes but oversubscribes
        the fabric.  A repeat serves the whole chain from the cache, and
        the single logical rejection counts exactly once (the cached
        implementation referencing the same area must not count again)."""
        program, region = profiled["g3fax"]
        snug = _fabric_variant(rows=5, columns=4)
        cache = CadArtifactCache()
        dpm = DynamicPartitioningModule(wcla=snug, artifact_cache=cache)

        first = dpm.partition(program.copy(), region)
        assert not first.success
        assert first.reason == "kernel does not fit the fabric"
        assert first.placement is not None and not first.placement.area.fits

        second = dpm.partition(program.copy(), region)
        assert second.reason == first.reason
        sources = _sources(second)
        assert sources["place"] == "negative-hit"
        assert sources["route"] == "hit"
        assert sources["implement"] == "hit"
        assert cache.negative_hits == 1

    def test_negative_hits_survive_in_service_results(self, profiled):
        tiny = _fabric_variant(rows=2, columns=2)
        cache = CadArtifactCache()
        job = WarpJob(name="too-big", benchmark="matmul", small=True,
                      wcla=tiny)
        execute_job(job, cache)
        repeat = execute_job(dataclasses.replace(job, name="too-big-again"),
                             cache)
        assert repeat.ok and not repeat.partitioned
        assert repeat.cache_negative_hits == 1
        assert repeat.stage_cache["place"] == "negative-hit"


# --------------------------------------------------------------------------- pluggable stages
class TestPluggableStages:
    def test_greedy_router_swaps_in_and_keeps_functionality(self, profiled):
        program, region = profiled["brev"]
        cache = CadArtifactCache()
        default = DynamicPartitioningModule(
            artifact_cache=cache).partition(program.copy(), region)
        greedy = DynamicPartitioningModule(
            artifact_cache=cache,
            stage_names=GREEDY_STAGES).partition(program.copy(), region)
        assert greedy.success
        assert greedy.routing.iterations == 1
        sources = _sources(greedy)
        # Upstream stages are shared with the default flow; the alternate
        # router (and everything keyed below it) recomputes.
        assert sources["synthesis"] == "hit"
        assert sources["place"] == "hit"
        assert sources["route"] == "miss"
        assert default.synthesis is greedy.synthesis

    def test_greedy_flow_end_to_end_through_the_warp_processor(
            self, compiled_small_programs):
        processor = WarpProcessor(config=PAPER_CONFIG,
                                  stage_names=GREEDY_STAGES)
        result = processor.run(compiled_small_programs["brev"].copy())
        assert result.partitioning.success
        assert result.checksums_match
        assert result.speedup > 1.0

    def test_job_stages_participate_in_dedup(self):
        plain = WarpJob(name="a", benchmark="brev", small=True)
        greedy = WarpJob(name="b", benchmark="brev", small=True,
                         stages=GREEDY_STAGES)
        assert plain.dedup_key() != greedy.dedup_key()
        # List specs coerce to a hashable tuple.
        listed = WarpJob(name="c", benchmark="brev", small=True,
                         stages=list(GREEDY_STAGES))
        assert listed.dedup_key() == greedy.dedup_key()

    def test_job_rejects_malformed_stage_specs(self):
        from repro.service import JobSpecError
        with pytest.raises(JobSpecError, match="single string"):
            WarpJob(name="s", benchmark="brev", stages="route-greedy")
        with pytest.raises(JobSpecError, match="non-empty"):
            WarpJob(name="e", benchmark="brev", stages=())
        # Slot coverage is validated at spec time, not deep in a worker:
        # omitting or reordering a slot is a JobSpecError.
        with pytest.raises(JobSpecError, match="slots"):
            WarpJob(name="m", benchmark="brev",
                    stages=GREEDY_STAGES[1:])  # decompile omitted
        with pytest.raises(JobSpecError, match="slots"):
            WarpJob(name="o", benchmark="brev",
                    stages=("decompile", "place", "synthesis", "route",
                            "implement", "binary-update"))

    def test_dpm_rejects_flow_plus_build_arguments(self):
        from repro.cad import build_flow
        with pytest.raises(ValueError, match="prebuilt flow"):
            DynamicPartitioningModule(flow=build_flow(),
                                      trace_hooks=[lambda r, c: None])
        with pytest.raises(ValueError, match="prebuilt flow"):
            DynamicPartitioningModule(flow=build_flow(),
                                      stage_names=GREEDY_STAGES)

    def test_processor_rejects_dpm_plus_overrides(self):
        dpm = DynamicPartitioningModule()
        with pytest.raises(ValueError, match="prebuilt dpm"):
            WarpProcessor(dpm=dpm, stage_names=GREEDY_STAGES)
        with pytest.raises(ValueError, match="prebuilt dpm"):
            WarpProcessor(dpm=dpm, artifact_cache=CadArtifactCache())

    def test_trace_hooks_observe_every_stage(self, profiled):
        program, region = profiled["brev"]
        seen = []
        dpm = DynamicPartitioningModule(
            trace_hooks=[lambda record, context: seen.append(record.stage)])
        outcome = dpm.partition(program.copy(), region)
        assert outcome.success
        assert seen == list(DEFAULT_STAGE_NAMES)


# --------------------------------------------------------------------------- service surface
class TestServiceStageSurface:
    def test_execute_job_reports_per_stage_accounting(self):
        cache = CadArtifactCache()
        result = execute_job(WarpJob(name="j", benchmark="brev", small=True),
                             cache)
        assert result.ok and result.partitioned
        assert set(result.stage_wall_ms) == set(DEFAULT_STAGE_NAMES)
        assert result.stage_cache["synthesis"] == "miss"
        assert result.stage_cache["decompile"] == "uncached"

        report = ServiceReport(results=[result])
        table = report.stage_table()
        assert "synthesis" in table and "binary-update" in table
        plain = report.to_plain()
        assert plain["stages"]["synthesis"]["misses"] == 1
        assert plain["cache"]["negative_hits"] == 0
        assert "stages" in plain["tables"]

    def test_job_file_accepts_and_validates_stages(self, tmp_path):
        import json
        from repro.service.cli import load_job_file
        from repro.service import JobSpecError

        good = tmp_path / "good.json"
        good.write_text(json.dumps({"jobs": [
            {"name": "g", "benchmark": "brev", "small": True,
             "stages": list(GREEDY_STAGES)}]}))
        jobs = load_job_file(good)
        assert jobs[0].stages == GREEDY_STAGES

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"jobs": [
            {"name": "b", "benchmark": "brev",
             "stages": ["decompile", "warp-speed"]}]}))
        with pytest.raises(JobSpecError, match="warp-speed"):
            load_job_file(bad)


# --------------------------------------------------------------------------- layering
class TestLayering:
    def test_partition_no_longer_imports_the_service_layer(self):
        """ISSUE 3 satellite: the artifact types live in repro.cad; the
        partition layer must not reach up into repro.service."""
        import inspect
        import repro.partition.dpm as dpm
        source = inspect.getsource(dpm)
        assert "from ..service" not in source
        assert "repro.service" not in source

    def test_service_artifact_cache_shim_reexports_cad_types(self):
        import repro.cad as cad
        from repro.service import artifact_cache as shim
        assert shim.CadArtifactCache is cad.CadArtifactCache
        assert shim.CadArtifacts is cad.CadArtifacts
        assert shim.canonical_body_form is cad.canonical_body_form
        assert shim.artifact_cache_key is cad.artifact_cache_key
        assert shim.CANONICAL_FORM_VERSION == cad.CANONICAL_FORM_VERSION
