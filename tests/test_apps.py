"""Tests for the benchmark suite: functional correctness against the references."""

from __future__ import annotations

import pytest

from repro.apps import build_benchmark, build_suite, benchmark_names, wrap32
from repro.apps.brev import reverse_bits32
from repro.apps.bitmnp import mix_and_count
from repro.apps.generators import DeterministicGenerator, run_lengths, word_data
from repro.apps.idct import cosine_table
from repro.compiler import compile_source
from repro.microblaze import MINIMAL_CONFIG, PAPER_CONFIG, run_program


class TestGenerators:
    def test_deterministic(self):
        a = DeterministicGenerator(42).words(10)
        b = DeterministicGenerator(42).words(10)
        assert a == b

    def test_ranges_respected(self):
        values = DeterministicGenerator(7).values(200, 3, 9)
        assert all(3 <= v <= 9 for v in values)

    def test_run_lengths_positive(self):
        lengths = run_lengths(50, seed=1)
        assert all(length >= 1 for length in lengths)

    def test_word_data_is_32bit(self):
        assert all(0 <= w <= 0xFFFFFFFF for w in word_data(20, 3))


class TestReferenceModels:
    def test_bit_reversal_is_involution(self):
        for value in (0, 1, 0x80000000, 0xDEADBEEF, 0x12345678):
            assert reverse_bits32(reverse_bits32(value)) == value

    def test_bit_reversal_known_value(self):
        assert reverse_bits32(0x00000001) == 0x80000000
        assert reverse_bits32(0xF0000000) == 0x0000000F

    def test_popcount_model_matches_python(self):
        for value in (0, 1, 0xFFFFFFFF, 0x12345678, 0x0F0F0F0F):
            # mix_and_count counts the bits of the *mixed* word, so compare
            # against a direct popcount of that same mixed word.
            from repro.apps.bitmnp import mixed_value
            assert mix_and_count(value) == bin(mixed_value(value) & 0xFFFFFFFF).count("1")

    def test_cosine_table_shape(self):
        table = cosine_table()
        assert len(table) == 64
        assert all(-256 <= v <= 256 for v in table)

    def test_wrap32(self):
        assert wrap32(0x80000000) == -(1 << 31)
        assert wrap32(0x7FFFFFFF) == (1 << 31) - 1


class TestBenchmarkDefinitions:
    def test_suite_names_match_paper_order(self):
        assert benchmark_names() == ["brev", "g3fax", "canrdr", "bitmnp", "idct", "matmul"]

    def test_small_suite_builds(self):
        suite = build_suite(small=True)
        assert len(suite) == 6
        for benchmark in suite:
            assert benchmark.source and benchmark.kernel_description

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("fft")


@pytest.mark.parametrize("name", benchmark_names())
class TestBenchmarkExecution:
    def test_checksum_matches_reference(self, name, small_benchmarks,
                                        compiled_small_programs):
        benchmark = small_benchmarks[name]
        result = run_program(compiled_small_programs[name], PAPER_CONFIG)
        assert result.return_value == benchmark.expected_checksum & 0xFFFFFFFF

    def test_checksum_independent_of_configuration(self, name, small_benchmarks):
        benchmark = small_benchmarks[name]
        reduced = compile_source(benchmark.source, name=name, config=MINIMAL_CONFIG)
        result = run_program(reduced.program, MINIMAL_CONFIG)
        assert result.return_value == benchmark.expected_checksum & 0xFFFFFFFF
