"""Tests for the ISA layer: registers, instructions, encoding, assembler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    AssemblyError,
    EncodingError,
    Instruction,
    InstrClass,
    InstrFormat,
    OPCODES,
    assemble,
    decode,
    encode,
    is_backward_branch,
    listing,
    nop,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)
from repro.isa.encoding import roundtrips
from repro.isa.registers import RegisterError


# --------------------------------------------------------------------------- registers
class TestRegisters:
    def test_register_names_roundtrip(self):
        for index in range(32):
            assert parse_register(register_name(index)) == index

    def test_aliases(self):
        assert parse_register("sp") == 1
        assert parse_register("lr") == 15
        assert parse_register("zero") == 0

    def test_invalid_register(self):
        with pytest.raises(RegisterError):
            parse_register("r32")
        with pytest.raises(RegisterError):
            parse_register("x7")
        with pytest.raises(RegisterError):
            register_name(40)

    def test_signed_unsigned_conversion(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_signed(to_unsigned(-12345)) == -12345


# --------------------------------------------------------------------------- opcode table
class TestOpcodeTable:
    def test_every_spec_has_consistent_operands(self):
        for mnemonic, spec in OPCODES.items():
            assert spec.mnemonic == mnemonic
            for field in spec.operands:
                assert field in ("rd", "ra", "rb", "imm")
            if spec.fmt is InstrFormat.TYPE_B:
                assert "rb" not in spec.operands

    def test_optional_units_marked(self):
        assert OPCODES["mul"].requires is not None
        assert OPCODES["bslli"].requires is not None
        assert OPCODES["idiv"].requires is not None
        assert OPCODES["add"].requires is None

    def test_branch_classification(self):
        assert OPCODES["beqi"].is_branch
        assert OPCODES["brlid"].is_branch
        assert OPCODES["rtsd"].is_branch
        assert not OPCODES["add"].is_branch

    def test_delay_slot_flags(self):
        assert OPCODES["brlid"].delay_slot
        assert OPCODES["rtsd"].delay_slot
        assert OPCODES["beqid"].delay_slot
        assert not OPCODES["beqi"].delay_slot

    def test_nop_is_canonical_or(self):
        instr = nop()
        assert instr.mnemonic == "or"
        assert instr.registers_written() == ()


# --------------------------------------------------------------------------- encoding
def _sample_instruction(mnemonic: str) -> Instruction:
    spec = OPCODES[mnemonic]
    instr = Instruction(mnemonic)
    for index, field in enumerate(spec.operands):
        if field == "imm":
            if mnemonic == "imm":
                instr.imm = 0xBEEF
            elif spec.opcode == 0x19:  # barrel shift immediates
                instr.imm = 7
            else:
                instr.imm = -44
        else:
            setattr(instr, field, 3 + index * 5)
    return instr


class TestEncoding:
    @pytest.mark.parametrize("mnemonic", sorted(OPCODES))
    def test_roundtrip_every_mnemonic(self, mnemonic):
        assert roundtrips(_sample_instruction(mnemonic))

    def test_unique_encodings(self):
        words = {encode(_sample_instruction(m)) for m in OPCODES}
        assert len(words) == len(OPCODES)

    def test_immediate_range_checked(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, ra=2, imm=0x12345))

    def test_barrel_shift_amount_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("bslli", rd=1, ra=2, imm=40))

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF)

    def test_backward_branch_detection(self):
        backward = Instruction("bnei", ra=5, imm=-16)
        forward = Instruction("bnei", ra=5, imm=16)
        assert is_backward_branch(backward)
        assert not is_backward_branch(forward)
        assert not is_backward_branch(Instruction("add", rd=1, ra=2, rb=3))

    @given(
        rd=st.integers(0, 31),
        ra=st.integers(0, 31),
        rb=st.integers(0, 31),
    )
    @settings(max_examples=50, deadline=None)
    def test_type_a_roundtrip_property(self, rd, ra, rb):
        instr = Instruction("add", rd=rd, ra=ra, rb=rb)
        assert roundtrips(instr)

    @given(rd=st.integers(0, 31), ra=st.integers(0, 31),
           imm=st.integers(-0x8000, 0x7FFF))
    @settings(max_examples=50, deadline=None)
    def test_type_b_roundtrip_property(self, rd, ra, imm):
        instr = Instruction("addi", rd=rd, ra=ra, imm=imm)
        assert roundtrips(instr)


# --------------------------------------------------------------------------- assembler
class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
        .text
        .entry main
        main:
            addi r3, r0, 42
            bri 0
        .data
        value: .word 7, 8
        """, name="simple")
        assert program.num_instructions == 2
        assert program.entry_point == 0
        assert program.symbol_address("value") == 0
        assert program.data[0:4] == (7).to_bytes(4, "little")

    def test_branch_label_resolution(self):
        program = assemble("""
        start:
            addi r5, r0, 3
        loop:
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """)
        branch = decode(program.text[2])
        assert branch.mnemonic == "bnei"
        assert branch.imm == -4

    def test_li_expansion(self):
        small = assemble("li r4, 100\nbri 0")
        large = assemble("li r4, 0x12345678\nbri 0")
        assert small.num_instructions == 2
        assert large.num_instructions == 3
        assert decode(large.text[0]).mnemonic == "imm"

    def test_la_uses_data_address(self):
        program = assemble("""
        .text
            la r6, table
            bri 0
        .data
        pad: .space 8
        table: .word 1
        """)
        instr = decode(program.text[0])
        assert instr.mnemonic == "addi"
        assert instr.imm == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n nop\na:\n nop")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1, r2")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("bri nowhere")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_data_directives(self):
        program = assemble("""
        .data
        bytes: .byte 1, 2, 3
        .align 4
        halfs: .half 500
        words: .word -1
        """)
        assert program.symbol_address("bytes") == 0
        assert program.symbol_address("halfs") == 4
        assert program.symbol_address("words") == 6 or program.symbol_address("words") == 8

    def test_listing_contains_labels(self):
        program = assemble("main:\n addi r3, r0, 1\n bri 0\n")
        text = listing(program)
        assert "main:" in text
        assert "addi" in text

    def test_patch_word_and_copy(self):
        program = assemble("main:\n addi r3, r0, 1\n bri 0\n")
        clone = program.copy()
        clone.patch_word(0, encode(Instruction("addi", rd=3, ra=0, imm=9)))
        assert decode(program.text[0]).imm == 1
        assert decode(clone.text[0]).imm == 9
