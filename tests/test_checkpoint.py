"""CPU checkpoint/restore: bit-exact round trips, migration, fan-out.

The acceptance bar (ISSUE 2): snapshot → restore → run-to-completion must
yield identical architectural state, statistics and output checksums
versus an uninterrupted run, under every execution engine — including
restoring onto a *different* engine than the one that took the snapshot,
and restoring in a *different process* (worker migration).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.isa.assembler import assemble
from repro.microblaze import (
    CHECKPOINT_MAGIC,
    PAPER_CONFIG,
    CheckpointError,
    MicroBlazeConfig,
    MicroBlazeSystem,
    SimplePeripheral,
    capture_checkpoint,
    describe_checkpoint,
    fan_out,
    restore_checkpoint,
    run_slice,
    spawn_from_checkpoint,
)
from repro.microblaze import engine_names
from repro.microblaze.opb import OPB_BASE_ADDRESS

#: Every registered engine: a new registration is pulled into the
#: same-engine round trips and all ordered cross-engine pairs below.
ENGINES = engine_names()


def _reference_run(program, engine):
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
    return system.run(program)


def _checkpoint_mid_run(program, engine, slice_instructions=400):
    """Start ``program``, preempt it mid-run, return (system, blob)."""
    system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
    system.start(program)
    finished = run_slice(system, slice_instructions)
    assert not finished, "program too small to be preempted"
    return system, capture_checkpoint(system)


# Module-level so the cross-process test can pickle it by reference.
def _resume_in_worker(blob, engine):
    system = spawn_from_checkpoint(blob, engine=engine)
    result = system.resume()
    return (result.stats, result.return_value, result.data_image,
            list(system.cpu.registers))


class TestRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_exact_resume_same_engine(self, engine,
                                          compiled_small_programs):
        program = compiled_small_programs["matmul"]
        reference = _reference_run(program, engine)

        _, blob = _checkpoint_mid_run(program, engine)
        restored = spawn_from_checkpoint(blob, engine=engine)
        result = restored.resume()

        assert result.stats == reference.stats
        assert result.return_value == reference.return_value
        assert result.data_image == reference.data_image

    @pytest.mark.parametrize("capture_engine,resume_engine",
                             [(capture, resume)
                              for capture in ENGINES for resume in ENGINES
                              if capture != resume])
    def test_cross_engine_resume(self, capture_engine, resume_engine,
                                 compiled_small_programs):
        """A snapshot is engine-independent: capture on one engine, resume
        on another, still bit-exact against an uninterrupted run."""
        program = compiled_small_programs["brev"]
        reference = _reference_run(program, "interp")

        _, blob = _checkpoint_mid_run(program, capture_engine)
        result = spawn_from_checkpoint(blob, engine=resume_engine).resume()

        assert result.stats == reference.stats
        assert result.return_value == reference.return_value
        assert result.data_image == reference.data_image

    def test_many_slices_equal_one_run(self, compiled_small_programs):
        """Preempting every few hundred instructions (with a checkpoint/
        restore cycle at every preemption) changes nothing."""
        program = compiled_small_programs["canrdr"]
        reference = _reference_run(program, "threaded")

        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="threaded")
        system.start(program)
        hops = 0
        while not run_slice(system, 300):
            blob = capture_checkpoint(system)
            system = spawn_from_checkpoint(blob)
            hops += 1
        assert hops >= 2
        final = system.resume()
        assert final.stats == reference.stats
        assert final.return_value == reference.return_value
        assert final.data_image == reference.data_image

    def test_checkpoint_captures_registers_exactly(self,
                                                   compiled_small_programs):
        program = compiled_small_programs["bitmnp"]
        source, blob = _checkpoint_mid_run(program, "threaded")
        restored = spawn_from_checkpoint(blob)
        assert list(restored.cpu.registers) == list(source.cpu.registers)
        assert restored.cpu.pc == source.cpu.pc
        assert restored.cpu.stats == source.cpu.stats


class TestMigration:
    def test_resume_in_another_process(self, compiled_small_programs):
        """Worker migration: the blob crosses a process boundary and the
        resumed run still matches the uninterrupted reference."""
        program = compiled_small_programs["matmul"]
        reference = _reference_run(program, "threaded")
        _, blob = _checkpoint_mid_run(program, "threaded")

        with ProcessPoolExecutor(max_workers=1) as pool:
            stats, return_value, data_image, _ = pool.submit(
                _resume_in_worker, blob, "threaded").result()

        assert stats == reference.stats
        assert return_value == reference.return_value
        assert data_image == reference.data_image

    def test_blob_is_plain_bytes(self, compiled_small_programs):
        _, blob = _checkpoint_mid_run(compiled_small_programs["brev"],
                                      "threaded")
        assert isinstance(blob, bytes)
        assert blob.startswith(CHECKPOINT_MAGIC)
        # Round-trips through pickle untouched (what the pool would do).
        assert pickle.loads(pickle.dumps(blob)) == blob
        meta = describe_checkpoint(blob)
        assert meta["program"]["name"] == "brev"
        assert not meta["halted"]
        assert meta["instructions"] > 0


class TestFanOut:
    def test_fan_out_matches_divergent_full_runs(self):
        """One warmed-up prefix fans into N scenario runs; each must equal
        a from-scratch run whose input was patched the same way."""
        source = """
            addi r5, r0, 64        # base address of the summed array
            addi r6, r0, 8         # element count
            addi r3, r0, 0
        loop:
            lw   r7, r5, r0
            add  r3, r3, r7
            addi r5, r5, 4
            addi r6, r6, -1
            bnei r6, loop
            bri  0
        """
        program = assemble(source, name="sum8")

        def poke(value):
            def scenario(system):
                system.data_bram.store_port_b(64, value, 4)
            return scenario

        # Checkpoint after the 3-instruction setup, before the loop reads
        # the array.
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="threaded")
        system.start(program)
        assert not run_slice(system, 3)
        blob = capture_checkpoint(system)

        values = (0, 7, 1000)
        fanned = fan_out(blob, [poke(value) for value in values])

        for value, result in zip(values, fanned):
            scratch = MicroBlazeSystem(config=PAPER_CONFIG, engine="threaded")
            scratch.start(program)
            scratch.data_bram.store_port_b(64, value, 4)
            reference = scratch.resume()
            assert result.return_value == reference.return_value == value
            assert result.stats == reference.stats

    def test_fan_out_with_peripherals(self):
        """Checkpoints of systems with peripherals fan out through a
        peripherals factory (one fresh set per scenario)."""
        source = f"""
            addi r5, r0, 5
            imm  {OPB_BASE_ADDRESS >> 16}
            swi  r5, r0, 0
            imm  {OPB_BASE_ADDRESS >> 16}
            lwi  r3, r0, 0
            bri  0
        """
        program = assemble(source, name="opb-fan")
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS, name="periph")
        system = MicroBlazeSystem(config=PAPER_CONFIG, peripherals=[periph])
        system.start(program)
        assert not run_slice(system, 3)  # peripheral register already holds 5
        blob = capture_checkpoint(system)

        def fresh_peripherals():
            return [SimplePeripheral(base_address=OPB_BASE_ADDRESS,
                                     name="periph")]

        def overwrite(value):
            def scenario(sys_):
                sys_.opb.peripherals[0].registers[0] = value
            return scenario

        results = fan_out(blob, [None, overwrite(42)],
                          peripherals_factory=fresh_peripherals)
        assert results[0].return_value == 5   # checkpointed device state
        assert results[1].return_value == 42  # scenario-divergent state

        # Without a factory the restore correctly refuses (topology).
        with pytest.raises(CheckpointError, match="topology"):
            fan_out(blob, [None])

    def test_failed_restore_leaves_target_untouched(self):
        """A restore that cannot complete (peripheral without a
        restore_state hook) must not half-mutate the target system."""
        program = assemble("addi r3, r0, 1\nbri 0", name="tiny")
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS, name="p")
        system = MicroBlazeSystem(config=PAPER_CONFIG, peripherals=[periph])
        system.start(program)
        blob = capture_checkpoint(system)

        class Stateless:
            """Same identity, snapshot-capable at capture, but no
            restore_state."""
            base_address = OPB_BASE_ADDRESS
            window_size = periph.window_size
            name = "p"
            def read(self, offset): return 0
            def write(self, offset, value): return None
            def tick(self, cycles): return None
            def snapshot_state(self): return {}

        target = MicroBlazeSystem(config=PAPER_CONFIG,
                                  peripherals=[Stateless()])
        before = bytes(target.instr_bram.storage)
        with pytest.raises(CheckpointError, match="restore_state"):
            restore_checkpoint(target, blob)
        # Nothing was mutated by the failed restore.
        assert bytes(target.instr_bram.storage) == before
        assert target.cpu.pc == 0 and target.cpu.stats.instructions == 0

    def test_fan_out_engine_override(self, compiled_small_programs):
        program = compiled_small_programs["brev"]
        reference = _reference_run(program, "threaded")
        _, blob = _checkpoint_mid_run(program, "threaded")
        results = fan_out(blob, [None, None], engine="interp")
        for result in results:
            assert result.stats == reference.stats
            assert result.return_value == reference.return_value


class TestPeripheralState:
    def test_simple_peripheral_round_trip(self):
        source = f"""
            addi r5, r0, 1
            imm  {OPB_BASE_ADDRESS >> 16}
            swi  r5, r0, 0          # OPB write to the peripheral
            imm  {OPB_BASE_ADDRESS >> 16}
            lwi  r3, r0, 0          # OPB read back
            bri  0
        """
        program = assemble(source, name="opb-io")
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS, name="periph")
        system = MicroBlazeSystem(config=PAPER_CONFIG, peripherals=[periph])
        system.start(program)
        assert not run_slice(system, 3)  # past the store, before the load
        assert periph.writes == 1
        blob = capture_checkpoint(system)

        fresh = SimplePeripheral(base_address=OPB_BASE_ADDRESS, name="periph")
        target = MicroBlazeSystem(config=PAPER_CONFIG, peripherals=[fresh])
        restore_checkpoint(target, blob)
        assert fresh.registers == periph.registers
        assert fresh.writes == 1
        result = target.resume()
        assert result.return_value == 1
        assert result.stats.opb_reads == 1
        assert result.stats.opb_writes == 1

    def test_topology_mismatch_rejected(self, compiled_small_programs):
        _, blob = _checkpoint_mid_run(compiled_small_programs["brev"],
                                      "threaded")
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS)
        target = MicroBlazeSystem(config=PAPER_CONFIG, peripherals=[periph])
        with pytest.raises(CheckpointError, match="topology"):
            restore_checkpoint(target, blob)


class TestValidation:
    def test_bad_magic_rejected(self):
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        with pytest.raises(CheckpointError, match="magic"):
            restore_checkpoint(system, b"not a checkpoint")

    def test_future_version_rejected(self, compiled_small_programs):
        """An unknown CHECKPOINT_VERSION is rejected *loudly*: the error
        names both the blob's version and the version this build reads."""
        from repro.microblaze.checkpoint import CHECKPOINT_VERSION

        _, blob = _checkpoint_mid_run(compiled_small_programs["brev"],
                                      "threaded")
        tampered = CHECKPOINT_MAGIC + (999).to_bytes(2, "big") \
            + blob[len(CHECKPOINT_MAGIC) + 2:]
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        with pytest.raises(CheckpointError) as excinfo:
            restore_checkpoint(system, tampered)
        message = str(excinfo.value)
        assert "999" in message
        assert str(CHECKPOINT_VERSION) in message
        # describe_checkpoint (diagnostics) must refuse the same blob, not
        # return half-decoded metadata.
        from repro.microblaze.checkpoint import describe_checkpoint
        with pytest.raises(CheckpointError):
            describe_checkpoint(tampered)

    def test_config_mismatch_rejected(self, compiled_small_programs):
        _, blob = _checkpoint_mid_run(compiled_small_programs["brev"],
                                      "threaded")
        other = MicroBlazeSystem(config=MicroBlazeConfig(clock_mhz=100.0))
        with pytest.raises(CheckpointError, match="configuration"):
            restore_checkpoint(other, blob)

    def test_unstarted_system_cannot_checkpoint(self):
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        with pytest.raises(CheckpointError):
            capture_checkpoint(system)

    def test_malicious_pickle_payload_cannot_execute(self, tmp_path):
        """The decoder refuses global lookups, so a crafted blob carrying a
        __reduce__ payload raises CheckpointError instead of running code."""
        import zlib

        canary = tmp_path / "pwned"

        class Exploit:
            def __reduce__(self):
                return (canary.write_text, ("owned",))

        blob = CHECKPOINT_MAGIC + (1).to_bytes(2, "big") \
            + zlib.compress(pickle.dumps({"version": 1, "evil": Exploit()}))
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        with pytest.raises(CheckpointError, match="corrupt"):
            restore_checkpoint(system, blob)
        with pytest.raises(CheckpointError, match="corrupt"):
            describe_checkpoint(blob)
        assert not canary.exists()

    def test_non_mapping_payload_rejected(self):
        import zlib
        blob = CHECKPOINT_MAGIC + (1).to_bytes(2, "big") \
            + zlib.compress(pickle.dumps([1, 2, 3]))
        system = MicroBlazeSystem(config=PAPER_CONFIG)
        with pytest.raises(CheckpointError, match="mapping"):
            restore_checkpoint(system, blob)
