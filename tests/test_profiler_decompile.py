"""Tests for the on-chip profiler and the binary decompiler."""

from __future__ import annotations

import pytest

from repro.decompile import (
    BinExpr,
    ControlFlowGraph,
    DecompilationError,
    ExpressionBuilder,
    LiveIn,
    Mux,
    OpKind,
    affine_decompose,
    decompile_and_extract,
    decompile_region,
    evaluate,
    extract_kernel,
)
from repro.isa import assemble
from repro.microblaze import PAPER_CONFIG, run_program
from repro.profiler import BranchFrequencyCache, CriticalRegion, OnChipProfiler

LOOP_SOURCE = """
    .entry main
main:
    addi r5, r0, 20        # n
    addi r6, r0, 0         # acc
    addi r7, r0, 0         # i
loop:
    add  r6, r6, r7
    addi r7, r7, 1
    cmp  r18, r7, r5
    bgti r18, loop
    add  r3, r6, r0
    bri 0
"""


class TestBranchCache:
    def test_counts_accumulate(self):
        cache = BranchFrequencyCache(num_entries=8, associativity=2)
        for _ in range(5):
            cache.record(0x40, 0x10)
        cache.record(0x80, 0x20)
        hottest = cache.hottest()
        assert hottest.target_address == 0x10
        assert hottest.count == 5
        assert cache.total_count() == 6

    def test_eviction_with_small_cache(self):
        cache = BranchFrequencyCache(num_entries=2, associativity=1)
        for target in range(0, 64, 4):
            cache.record(0x100 + target, target)
        assert cache.evictions > 0
        assert len(cache.entries()) <= 2

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchFrequencyCache(num_entries=6, associativity=4)


class TestProfiler:
    def test_finds_the_loop(self):
        program = assemble(LOOP_SOURCE)
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, listeners=[profiler])
        region = profiler.most_critical_region()
        assert region is not None
        assert region.start_address == program.symbol_address("loop")
        assert region.frequency == 19  # 20 iterations, last branch not taken
        assert region.num_instructions == 4
        assert "loop" in profiler.summary() or "0x" in profiler.summary()

    def test_hottest_region_of_benchmark(self, compiled_small_programs):
        profiler = OnChipProfiler()
        run_program(compiled_small_programs["matmul"], PAPER_CONFIG,
                    listeners=[profiler])
        regions = profiler.critical_regions()
        assert regions and regions[0].frequency >= regions[-1].frequency
        assert regions[0].relative_weight <= 1.0

    def test_edge_profile_counts_taken_edges(self):
        """The basic-block edge profile: every taken branch records its
        ``(pc, target)`` edge, forward and backward alike."""
        program = assemble(LOOP_SOURCE)
        profiler = OnChipProfiler()
        result = run_program(program, PAPER_CONFIG, listeners=[profiler])
        # The loop's backward edge is its hottest edge and matches the
        # branch-frequency cache's observation of the same loop.
        header = program.symbol_address("loop")
        back_edges = {edge: count for edge, count
                      in profiler.edge_counts.items() if edge[1] == header}
        assert back_edges
        assert max(back_edges.values()) == 19
        # Edge weights partition the taken-branch count exactly.
        assert sum(profiler.edge_counts.values()) \
            == result.stats.branches_taken

    @pytest.mark.parametrize("engine", ["interp", "threaded", "jit"])
    def test_edge_profile_identical_across_engines(self, engine,
                                                   compiled_small_programs):
        reference = OnChipProfiler()
        run_program(compiled_small_programs["canrdr"], PAPER_CONFIG,
                    listeners=[reference], engine="interp")
        observed = OnChipProfiler()
        run_program(compiled_small_programs["canrdr"], PAPER_CONFIG,
                    listeners=[observed], engine=engine)
        assert observed.edge_counts == reference.edge_counts


class TestControlFlowGraph:
    def test_blocks_and_back_edge(self):
        program = assemble(LOOP_SOURCE)
        cfg = ControlFlowGraph(program.text)
        assert cfg.num_blocks() >= 3
        assert cfg.back_edges()
        header = program.symbol_address("loop")
        latch_block = cfg.block_containing(header + 12)
        assert latch_block is not None
        loop_blocks = cfg.natural_loop(latch_block.start_address, latch_block.start_address)
        assert loop_blocks


class TestExpressionDag:
    def test_structural_sharing_and_folding(self):
        builder = ExpressionBuilder()
        a = builder.live_in(5)
        expr1 = builder.binary(OpKind.ADD, a, builder.const(4))
        expr2 = builder.binary(OpKind.ADD, a, builder.const(4))
        assert expr1 is expr2
        folded = builder.binary(OpKind.MUL, builder.const(6), builder.const(7))
        assert folded.value == 42

    def test_identity_simplifications(self):
        builder = ExpressionBuilder()
        a = builder.live_in(5)
        assert builder.binary(OpKind.ADD, a, builder.const(0)) is a
        assert builder.binary(OpKind.MUL, a, builder.const(0)).value == 0

    def test_evaluate_matches_python(self):
        builder = ExpressionBuilder()
        a, b = builder.live_in(5), builder.live_in(6)
        expr = builder.binary(OpKind.XOR,
                              builder.binary(OpKind.SHL, a, builder.const(3)),
                              builder.binary(OpKind.AND, b, builder.const(0xFF)))
        value = evaluate(expr, {5: 0x1234, 6: 0xABCD}, lambda addr, w: 0, {})
        assert value == ((0x1234 << 3) ^ (0xABCD & 0xFF)) & 0xFFFFFFFF

    def test_affine_decomposition(self):
        builder = ExpressionBuilder()
        i = builder.live_in(20)
        base = builder.const(0x100)
        addr = builder.binary(OpKind.ADD, base,
                              builder.binary(OpKind.SHL, i, builder.const(2)))
        form = affine_decompose(addr)
        assert form is not None
        assert form.constant == 0x100
        assert form.coefficients == {20: 4}

    def test_non_affine_returns_none(self):
        builder = ExpressionBuilder()
        i = builder.live_in(20)
        addr = builder.binary(OpKind.MUL, i, i)
        assert affine_decompose(addr) is None


class TestDecompilation:
    def _region(self, program):
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, listeners=[profiler])
        return profiler.most_critical_region()

    def test_simple_loop_kernel(self):
        program = assemble(LOOP_SOURCE)
        region = self._region(program)
        kernel = decompile_and_extract(program.text, region)
        assert kernel.partitionable
        assert [v.register for v in kernel.induction_variables] == [7]
        assert kernel.operations.loads == 0 and kernel.operations.stores == 0
        assert 6 in kernel.live_out_registers

    def test_benchmark_kernels_partitionable(self, compiled_small_programs):
        for name in ("brev", "matmul", "g3fax", "canrdr"):
            program = compiled_small_programs[name]
            region = self._region(program)
            kernel = decompile_and_extract(program.text, region)
            assert kernel.partitionable, f"{name}: {kernel.rejection_reason}"
            assert kernel.induction_variables
            assert all(access.is_regular for access in kernel.memory_accesses)

    def test_canrdr_kernel_has_guarded_behaviour(self, compiled_small_programs):
        program = compiled_small_programs["canrdr"]
        region = self._region(program)
        kernel = decompile_and_extract(program.text, region)
        assert kernel.operations.mux > 0

    def test_region_with_call_rejected(self):
        source = """
            .entry main
        f:
            rtsd r15, 8
            nop
        main:
            addi r5, r0, 5
        loop:
            brlid r15, f
            nop
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """
        program = assemble(source)
        region = self._region(program)
        with pytest.raises(DecompilationError):
            decompile_region(program.text, region)

    def test_bad_region_rejected(self):
        program = assemble(LOOP_SOURCE)
        bogus = CriticalRegion(start_address=0, end_address=4, frequency=1)
        with pytest.raises(DecompilationError):
            decompile_region(program.text, bogus)
