"""Tests for synthesis (logic minimisation, technology mapping, datapath
binding) and the WCLA fabric (placement, routing, timing, execution)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.decompile import decompile_and_extract
from repro.fabric import (
    DEFAULT_WCLA,
    WclaParameters,
    estimate_timing,
    implement_kernel,
    place_kernel,
    route_kernel,
)
from repro.microblaze import PAPER_CONFIG, run_program
from repro.profiler import OnChipProfiler
from repro.synthesis import (
    cover_evaluates,
    estimate_word_operator_luts,
    map_cover_to_luts,
    minimize_cover,
    minterms_to_cover,
    synthesize_kernel,
    truth_table,
)


def _kernel_for(program):
    profiler = OnChipProfiler()
    run_program(program, PAPER_CONFIG, listeners=[profiler])
    region = profiler.most_critical_region()
    return decompile_and_extract(program.text, region)


@pytest.fixture(scope="module")
def kernels(compiled_small_programs):
    return {name: _kernel_for(program)
            for name, program in compiled_small_programs.items()}


# --------------------------------------------------------------------------- logic minimisation
class TestLogicMinimizer:
    def test_redundant_cover_shrinks(self):
        # f = a'b + ab + ab' = a + b
        result = minimize_cover(2, ["01", "11", "10"])
        assert result.minimized_cubes <= 2
        assert result.minimized_literals < result.original_literals

    def test_equivalence_preserved(self):
        cover = ["0101", "0111", "1101", "1111", "0011"]
        result = minimize_cover(4, cover)
        assert truth_table(cover, 4) == truth_table(result.cover, 4)

    def test_single_minterm(self):
        result = minimize_cover(3, minterms_to_cover(3, [5]))
        assert truth_table(result.cover, 3)[5] is True
        assert sum(truth_table(result.cover, 3)) == 1

    def test_variable_limit_enforced(self):
        from repro.synthesis import LogicError
        with pytest.raises(LogicError):
            minimize_cover(13, ["-" * 13])

    @given(st.sets(st.integers(0, 31), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_minimization_equivalence_property(self, minterms):
        cover = minterms_to_cover(5, sorted(minterms))
        result = minimize_cover(5, cover)
        for minterm in range(32):
            expected = minterm in minterms
            assert cover_evaluates(result.cover, minterm, 5) == expected


# --------------------------------------------------------------------------- technology mapping
class TestTechMap:
    def test_single_literal_is_free(self):
        mapped = map_cover_to_luts(["1-"], 2, "f")
        assert mapped.lut_count == 0

    def test_wide_product_needs_tree(self):
        mapped = map_cover_to_luts(["11111111"], 8, "f", lut_inputs=3)
        assert mapped.lut_count >= 3
        assert mapped.depth >= 2

    def test_word_operator_estimates(self):
        add_luts, add_depth = estimate_word_operator_luts(32, "add")
        logic_luts, logic_depth = estimate_word_operator_luts(32, "and")
        assert add_luts > logic_luts
        assert add_depth > logic_depth
        assert estimate_word_operator_luts(0, "add") == (0, 0)
        with pytest.raises(ValueError):
            estimate_word_operator_luts(8, "bogus")


# --------------------------------------------------------------------------- datapath synthesis
class TestDatapathSynthesis:
    def test_brev_kernel_is_mostly_wires(self, kernels):
        synthesis = synthesize_kernel(kernels["brev"])
        assert synthesis.wire_only_nodes >= 10
        assert synthesis.mac_operations == 0
        # The bit-reversal itself needs no logic; only checksum/induction adders.
        assert synthesis.datapath_luts < 200

    def test_matmul_kernel_uses_mac(self, kernels):
        synthesis = synthesize_kernel(kernels["matmul"])
        assert synthesis.mac_operations >= 1
        assert synthesis.initiation_interval >= 2  # two loads, one port

    def test_g3fax_kernel_single_store(self, kernels):
        synthesis = synthesize_kernel(kernels["g3fax"])
        assert synthesis.memory_writes_per_iteration == 1
        assert synthesis.initiation_interval == 1

    def test_control_unit_synthesised(self, kernels):
        synthesis = synthesize_kernel(kernels["canrdr"])
        assert synthesis.control is not None
        assert synthesis.control.luts > 0
        assert synthesis.control.minimized_literals <= synthesis.control.original_literals

    def test_summary_text(self, kernels):
        synthesis = synthesize_kernel(kernels["bitmnp"])
        assert "LUTs" in synthesis.summary()


# --------------------------------------------------------------------------- fabric
class TestFabricFlow:
    def test_place_route_time_implement(self, kernels):
        for name in ("brev", "matmul", "canrdr"):
            kernel = kernels[name]
            synthesis = synthesize_kernel(kernel)
            placement = place_kernel(synthesis, DEFAULT_WCLA)
            routing = route_kernel(placement, DEFAULT_WCLA)
            implementation = implement_kernel(kernel, synthesis, placement,
                                              routing, DEFAULT_WCLA)
            assert placement.area.fits
            assert placement.total_wirelength >= 0
            assert routing.iterations >= 1
            assert 10.0 <= implementation.clock_mhz <= DEFAULT_WCLA.max_clock_mhz
            assert implementation.cycles_for_iterations(10) > \
                implementation.cycles_for_iterations(1)
            assert implementation.cycles_for_iterations(0) == 0
            assert implementation.bitstream.total_bits > 0

    def test_placement_respects_fixed_sites(self, kernels):
        synthesis = synthesize_kernel(kernels["matmul"])
        placement = place_kernel(synthesis, DEFAULT_WCLA)
        assert placement.components["mac"].fixed
        locations = [c.location for c in placement.components.values()
                     if c.location is not None and not c.fixed]
        assert len(set(locations)) == len(locations)  # no two anchors collide

    def test_routing_congestion_reported(self, kernels):
        synthesis = synthesize_kernel(kernels["bitmnp"])
        placement = place_kernel(synthesis, DEFAULT_WCLA)
        routing = route_kernel(placement, DEFAULT_WCLA)
        assert routing.max_channel_occupancy <= routing.channel_capacity \
            or routing.congested

    def test_timing_limiting_factor_labelled(self, kernels):
        synthesis = synthesize_kernel(kernels["matmul"])
        placement = place_kernel(synthesis, DEFAULT_WCLA)
        routing = route_kernel(placement, DEFAULT_WCLA)
        timing = estimate_timing(synthesis, routing, DEFAULT_WCLA)
        assert timing.limiting_factor() in ("fabric floor", "memory access",
                                            "MAC", "logic recurrence")
        assert timing.period_ns >= DEFAULT_WCLA.min_period_ns

    def test_small_fabric_rejects_large_kernel(self, kernels):
        from repro.fabric import FabricCapacityError, FabricParameters
        tiny = WclaParameters(fabric=FabricParameters(rows=3, columns=3))
        synthesis = synthesize_kernel(kernels["bitmnp"])
        with pytest.raises(FabricCapacityError):
            place_kernel(synthesis, tiny)
