"""Tests for the source-generating JIT execution engine.

Mirrors the threaded-engine test structure one engine further out:

* **Differential equivalence** — every suite benchmark runs on the
  reference interpreter and on ``engine="jit"`` and must produce
  identical ``ExecutionStats``, register files, data-BRAM images and
  profiler rankings (and the jit engine must also agree with the threaded
  engine, closing the triangle).
* **Fault paths** — a misaligned access landing mid-superblock, a fault
  behind a fused ``imm`` prefix, and a fault in a delay slot must leave
  interpreter-identical state under ``precise_fault_stats=True``;
  default mode keeps architectural state identical and documents the
  same wholesale-statistics divergence as the threaded engine.
* **Cache invalidation** — generated blocks must drop when the dynamic
  partitioning module patches the executing binary.
* **Semantics edges** — imm fusion, delay slots, budgets, dynamic
  self-branch halts: everything the generated source specializes.
"""

from __future__ import annotations

import pytest

from repro.apps import build_benchmark, build_suite
from repro.compiler import compile_source
from repro.isa import assemble
from repro.microblaze import (
    ExecutionLimitExceeded,
    IllegalInstruction,
    MemoryError_,
    MicroBlazeConfig,
    MicroBlazeSystem,
    MINIMAL_CONFIG,
    PAPER_CONFIG,
    run_program,
)
from repro.partition.binary_patch import patch_live_words
from repro.profiler.branch_cache import BranchFrequencyCache
from repro.profiler.profiler import OnChipProfiler

SUITE_NAMES = [b.name for b in build_suite(small=True)]


def run_engines(program, engines=("interp", "jit"), config=PAPER_CONFIG,
                **kwargs):
    return {engine: run_program(program, config, engine=engine, **kwargs)
            for engine in engines}


def assert_equivalent(reference, observed):
    assert observed.stats == reference.stats
    assert observed.return_value == reference.return_value
    assert observed.data_image == reference.data_image


# ---------------------------------------------------------------- differential
class TestDifferential:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_suite_benchmark_bit_exact(self, name, compiled_small_programs):
        program = compiled_small_programs[name]
        systems = {}
        results = {}
        for engine in ("interp", "threaded", "jit"):
            system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
            results[engine] = system.run(program)
            systems[engine] = system

        assert_equivalent(results["interp"], results["jit"])
        assert_equivalent(results["threaded"], results["jit"])
        assert systems["jit"].cpu.registers == systems["interp"].cpu.registers
        assert bytes(systems["jit"].data_bram.storage) \
            == bytes(systems["interp"].data_bram.storage)

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_profiler_rankings_identical(self, name, compiled_small_programs):
        program = compiled_small_programs[name]
        profilers = {}
        for engine in ("interp", "jit"):
            profiler = OnChipProfiler(BranchFrequencyCache(num_entries=16))
            run_program(program, PAPER_CONFIG, listeners=[profiler],
                        engine=engine)
            profilers[engine] = profiler
        a, b = profilers["interp"], profilers["jit"]
        assert a.critical_regions() == b.critical_regions()
        assert a.edge_counts == b.edge_counts
        assert (a.total_branches, a.backward_taken, a.instructions_observed) \
            == (b.total_branches, b.backward_taken, b.instructions_observed)

    def test_precise_mode_fault_free_bit_exact(self, compiled_small_programs):
        program = compiled_small_programs["canrdr"]
        reference = MicroBlazeSystem(config=PAPER_CONFIG,
                                     engine="interp").run(program)
        precise = MicroBlazeSystem(config=PAPER_CONFIG, engine="jit",
                                   precise_fault_stats=True).run(program)
        assert_equivalent(reference, precise)


# -------------------------------------------------------------------- faults
#: A misaligned word load (address 9) landing mid-superblock.
MISALIGNED_MID_BLOCK = """
    addi r5, r0, 8
    addi r6, r0, 1
    add  r7, r5, r6        # r7 = 9: misaligned
    addi r8, r0, 3
    lw   r9, r7, r0        # faults here, mid-block
    addi r10, r0, 99       # must never execute
    bri  0
"""

MISALIGNED_AFTER_IMM = """
    addi r5, r0, 1
    imm  0
    lwi  r9, r5, 8         # address 9 via imm-fused immediate: faults
    bri  0
"""

MISALIGNED_IN_DELAY_SLOT = """
    addi r5, r0, 6
    addi r6, r0, 1
    brid 12                # taken, delay slot executes
    sw   r6, r5, r0        # misaligned store at 6: faults in the slot
    addi r7, r0, 1
    bri  0
"""


def _run_to_fault(source, engine, precise=False, config=PAPER_CONFIG,
                  exception=MemoryError_):
    program = assemble(source, name="faulty")
    system = MicroBlazeSystem(config=config, engine=engine,
                              precise_fault_stats=precise)
    with pytest.raises(exception) as info:
        system.run(program)
    cpu = system.cpu
    return {
        "stats": cpu.stats,
        "registers": list(cpu.registers),
        "pc": cpu.pc,
        "imm_latch": cpu._imm_latch,
        "message": str(info.value),
    }


class TestFaultPaths:
    @pytest.mark.parametrize("source,expected_instructions", [
        (MISALIGNED_MID_BLOCK, 4),
        (MISALIGNED_AFTER_IMM, 2),
        # A faulting slot leaves both the slot and its branch unrecorded.
        (MISALIGNED_IN_DELAY_SLOT, 2),
    ])
    def test_precise_mode_matches_interpreter(self, source,
                                              expected_instructions):
        interp = _run_to_fault(source, "interp")
        precise = _run_to_fault(source, "jit", precise=True)
        assert precise["stats"] == interp["stats"]
        assert precise["registers"] == interp["registers"]
        assert precise["pc"] == interp["pc"]
        assert precise["imm_latch"] == interp["imm_latch"]
        assert precise["message"] == interp["message"]
        assert interp["stats"].instructions == expected_instructions

    def test_default_mode_keeps_architectural_state(self):
        """Without the flag, the jit engine documents the same wholesale
        block-statistics divergence as the threaded engine — registers and
        the fault itself stay identical."""
        interp = _run_to_fault(MISALIGNED_MID_BLOCK, "interp")
        plain = _run_to_fault(MISALIGNED_MID_BLOCK, "jit", precise=False)
        assert plain["registers"] == interp["registers"]
        assert plain["message"] == interp["message"]
        assert plain["stats"].instructions > interp["stats"].instructions

    def test_missing_unit_fault(self):
        source = """
            addi r5, r0, 3
            addi r6, r0, 4
            mul  r7, r5, r6       # no multiplier in MINIMAL_CONFIG
            bri  0
        """
        interp = _run_to_fault(source, "interp", config=MINIMAL_CONFIG,
                               exception=IllegalInstruction)
        precise = _run_to_fault(source, "jit", precise=True,
                                config=MINIMAL_CONFIG,
                                exception=IllegalInstruction)
        assert precise["stats"] == interp["stats"]
        assert precise["message"] == interp["message"]
        assert precise["pc"] == interp["pc"]

    def test_fetch_past_bram_end_faults_after_block_executes(self):
        program = assemble("""
            addi r5, r0, 7
            swi r5, r0, 0
        """)
        images = {}
        for engine in ("interp", "jit"):
            config = MicroBlazeConfig(instr_bram_kb=1, data_bram_kb=1)
            system = MicroBlazeSystem(config=config, engine=engine)
            base = system.instr_bram.size - 4 * len(program.text)
            system.instr_bram.store_words(base, program.text)
            system._loaded_program = program
            system.cpu.reset(entry_point=base)
            with pytest.raises(MemoryError_):
                system.cpu.run()
            images[engine] = (bytes(system.data_bram.storage),
                              system.cpu.stats)
        assert images["jit"] == images["interp"]
        assert images["jit"][0][0] == 7  # the store did execute


# ------------------------------------------------------------ semantics edges
class TestSemanticsEdges:
    def run_asm(self, source, config=PAPER_CONFIG):
        program = assemble(source)
        results = run_engines(program, config=config)
        assert_equivalent(results["interp"], results["jit"])
        return results["jit"]

    def test_imm_prefix_fusion(self):
        result = self.run_asm("""
            li r5, 0x12345678
            li r6, 0xFFFF0000
            add r3, r5, r6
            bri 0
        """)
        assert result.return_value == (0x12345678 + 0xFFFF0000) & 0xFFFFFFFF

    def test_imm_latch_survives_into_delay_slot(self):
        result = self.run_asm("""
            addi r5, r0, 0
            addi r6, r0, 8
            imm 1
            beqd r5, r6
            addi r4, r0, 1      # slot sees the latch: r4 = 0x10001
            add r3, r4, r0
            bri 0
        """)
        assert result.return_value == 0x10001

    def test_delay_slot_cycle_accounting(self):
        result = self.run_asm("""
            .entry main
        sub:
            add r3, r5, r5
            rtsd r15, 8
            addi r3, r3, 1
        main:
            addi r5, r0, 4
            brlid r15, sub
            addi r5, r5, 1
            bri 0
        """)
        assert result.return_value == 11

    def test_register_indirect_branch_halt(self):
        result = self.run_asm("""
            addi r3, r0, 9
            addi r5, r0, 0
            br r5               # target == pc: dynamic self-branch halt
        """)
        assert result.return_value == 9

    def test_execution_budget_raises_at_same_instruction(self):
        program = assemble("""
            addi r5, r0, 100
        loop:
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """)
        for budget in (1, 2, 3, 50, 101):
            stats = {}
            for engine in ("interp", "jit"):
                system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
                system.load(program)
                system.cpu.reset(entry_point=program.entry_point)
                with pytest.raises(ExecutionLimitExceeded):
                    system.cpu.run(max_instructions=budget)
                stats[engine] = system.cpu.stats
            assert stats["jit"] == stats["interp"]


# ------------------------------------------------------------ cache invalidation
class TestCacheInvalidation:
    LOOP = """
        addi r5, r0, 10
        addi r3, r0, 0
    loop:
        addi r3, r3, 1
        addi r5, r5, -1
        bnei r5, loop
        bri 0
    """

    def _warm_system(self):
        program = assemble(self.LOOP)
        system = MicroBlazeSystem(config=PAPER_CONFIG, engine="jit")
        system.load(program)
        system.cpu.reset(entry_point=program.entry_point)
        with pytest.raises(ExecutionLimitExceeded):
            system.cpu.run(max_instructions=8)
        return system, program

    def test_mid_run_word_patch_takes_effect(self):
        system, program = self._warm_system()
        assert system.cpu._blocks, "jit superblocks should be warm"
        patched = assemble(self.LOOP.replace("addi r3, r3, 1",
                                             "addi r3, r3, 16"))
        patch_live_words(system, 8, [patched.text[2]])
        system.cpu.run()
        executed_before = 2
        expected = executed_before * 1 + (10 - executed_before) * 16
        assert system.cpu.read_register(3) == expected

    def test_selective_invalidation_drops_only_covering_blocks(self):
        system, program = self._warm_system()
        cpu = system.cpu
        blocks_before = dict(cpu._blocks)
        assert blocks_before
        cpu.invalidate_decode_cache(8)
        for entry, block in blocks_before.items():
            # JIT block layout: (n, fn, entry, end, static_cycles).
            if block[2] <= 8 <= block[3]:
                assert entry not in cpu._blocks
            else:
                assert entry in cpu._blocks
        assert 8 not in cpu._decoded
