"""The seeded random program generator: determinism, halting, shrinking."""

from __future__ import annotations

import pytest

from repro.fuzz import (
    generate_program,
    generate_source,
    num_blocks,
    profile_names,
    resolve_profile,
    shrink,
)
from repro.fuzz.generator import DATA_WINDOW_BYTES
from repro.microblaze import MicroBlazeSystem, PAPER_CONFIG
from repro.microblaze.opb import OPB_BASE_ADDRESS, SimplePeripheral


class TestDeterminism:
    @pytest.mark.parametrize("profile", profile_names())
    def test_same_seed_is_bit_identical(self, profile):
        first = generate_program(11, profile)
        second = generate_program(11, profile)
        assert first.text == second.text
        assert bytes(first.data) == bytes(second.data)
        assert first.source == second.source

    def test_distinct_seeds_differ(self):
        texts = {tuple(generate_program(seed, "mixed").text)
                 for seed in range(8)}
        assert len(texts) == 8

    def test_profiles_differ_for_same_seed(self):
        assert generate_source(0, "mixed") != generate_source(0, "alu")

    def test_unknown_profile_lists_choices(self):
        with pytest.raises(KeyError, match="alu"):
            resolve_profile("nosuch")


class TestHalting:
    """Generated programs are bounded by construction (all loops count
    down), so every one must halt — or fault, for near-fault profiles —
    well inside the campaign budget on the reference interpreter."""

    @pytest.mark.parametrize("profile", profile_names())
    @pytest.mark.parametrize("seed", (0, 5))
    def test_program_terminates_on_the_interpreter(self, profile, seed):
        resolved = resolve_profile(profile)
        peripherals = (SimplePeripheral(OPB_BASE_ADDRESS, num_registers=4),) \
            if resolved.opb_traffic else ()
        system = MicroBlazeSystem(config=PAPER_CONFIG,
                                  peripherals=peripherals, engine="interp")
        program = generate_program(seed, resolved)
        assert program.data_size >= DATA_WINDOW_BYTES
        try:
            system.run(program, max_instructions=2_000_000)
        except Exception:  # noqa: BLE001 - faults terminate too
            if not resolved.near_fault:
                raise
        else:
            assert system.cpu.halted


class TestShrinking:
    def test_kept_blocks_are_bit_identical_to_original(self):
        blocks = num_blocks(4, "mixed")
        assert blocks >= 1
        full = generate_source(4, "mixed")
        half = generate_source(4, "mixed",
                               include_blocks=range(0, blocks, 2))
        for line in half.splitlines():
            assert line in full

    def test_shrink_minimizes_while_predicate_holds(self):
        target = num_blocks(9, "branchy") - 1

        def predicate(program) -> bool:
            # "Still reproduces" stand-in: the last body block is present.
            return f"Lb{target}_" in (program.source or "") \
                or not any(f"Lb{index}_" in generate_source(9, "branchy")
                           for index in (target,))

        kept, shrunk = shrink(9, "branchy", predicate)
        assert kept == [target] or predicate(shrunk)
        assert len(kept) <= num_blocks(9, "branchy")
        # Shrinking is reproducible: regenerating the kept set is identical.
        again = generate_program(9, "branchy", include_blocks=kept)
        assert again.text == shrunk.text

    def test_shrink_rejects_vacuous_predicate(self):
        with pytest.raises(ValueError, match="predicate does not hold"):
            shrink(0, "mixed", lambda program: False)

    def test_unknown_block_indices_raise(self):
        with pytest.raises(ValueError, match="no such body blocks"):
            generate_source(0, "mixed", include_blocks=[999])
