"""The ``repro-warp fuzz`` verb and engine-name validation exit codes."""

from __future__ import annotations

import json

import pytest

from repro.service.cli import load_job_file, main
from repro.service.jobs import JobSpecError


class TestEngineNameValidation:
    """Unknown engine names exit with code 2 and a clean one-line error,
    on every verb that takes one — never a traceback."""

    def test_fuzz_unknown_engine_exits_2(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--engines",
                     "interp,warp9000", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "warp9000" in err
        assert "registered engines" in err

    def test_hot_edges_unknown_engine_exits_2(self, capsys):
        assert main(["hot-edges", "--engine", "warp9000", "--small",
                     "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "warp9000" in err
        assert "registered engines" in err

    def test_fuzz_unknown_profile_exits_2(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--profile", "nosuch",
                     "--quiet"]) == 2
        assert "unknown fuzz profile" in capsys.readouterr().err

    def test_fuzz_rejects_non_positive_seed_count(self):
        assert main(["fuzz", "--seeds", "0", "--quiet"]) == 2


class TestFuzzVerb:
    def test_small_campaign_writes_report(self, tmp_path):
        out = tmp_path / "fuzz.json"
        code = main(["fuzz", "--seeds", "2", "--profile", "alu",
                     "--workers", "0", "--quiet", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["fuzz"]["programs"] == 2
        assert payload["fuzz"]["instructions"] > 0
        assert payload["fuzz"]["divergences"] == 0
        job = payload["jobs"][0]
        assert job["workload"].startswith("fuzz:alu[")
        # Fuzz campaigns never pollute the warp speedup/energy tables.
        assert payload["tables"]["speedup"] == ""
        assert payload["tables"]["energy"] == ""

    def test_seed_range_shards_across_jobs(self, tmp_path):
        out = tmp_path / "fuzz.json"
        code = main(["fuzz", "--seeds", "5", "--jobs", "2", "--profile",
                     "alu", "--workers", "0", "--quiet", "--out",
                     str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        workloads = sorted(job["workload"] for job in payload["jobs"])
        assert workloads == ["fuzz:alu[0..3)", "fuzz:alu[3..5)"]
        assert payload["fuzz"]["programs"] == 5

    def test_engine_subset_is_honoured(self, tmp_path):
        out = tmp_path / "fuzz.json"
        code = main(["fuzz", "--seeds", "1", "--engines", "threaded",
                     "--workers", "0", "--quiet", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["fuzz"]["programs"] == 1


class TestFuzzJobFiles:
    def test_job_file_round_trip(self, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "night-shift", "fuzz_profile": "alu",
             "fuzz_seed": 3, "fuzz_count": 2,
             "fuzz_engines": ["threaded", "jit"]},
        ]}))
        jobs = load_job_file(jobfile)
        assert jobs[0].fuzz_profile == "alu"
        assert jobs[0].fuzz_seed == 3
        assert jobs[0].fuzz_count == 2
        assert jobs[0].fuzz_engines == ("threaded", "jit")
        assert jobs[0].describe() == "night-shift: fuzz:alu[3..5) " \
            "on paper/default"

    def test_job_file_runs_through_the_jobs_verb(self, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "mini", "fuzz_profile": "alu", "fuzz_count": 1},
        ]}))
        out = tmp_path / "report.json"
        assert main(["jobs", str(jobfile), "--workers", "0", "--quiet",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["fuzz"]["programs"] == 1

    def test_job_file_rejects_bad_fuzz_fields(self, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "x", "fuzz_profile": "nosuch"}]}))
        with pytest.raises(JobSpecError, match="unknown fuzz profile"):
            load_job_file(jobfile)
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "x", "fuzz_profile": "alu",
             "fuzz_engines": ["warp9000"]}]}))
        with pytest.raises(JobSpecError, match="warp9000"):
            load_job_file(jobfile)
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "x", "benchmark": "brev", "fuzz_profile": "alu"}]}))
        with pytest.raises(JobSpecError, match="exactly one"):
            load_job_file(jobfile)
