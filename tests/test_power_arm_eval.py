"""Tests for the power/energy models, the ARM comparison models, and the
experiment harness (Figures 6/7 and the Section 2 study)."""

from __future__ import annotations

import pytest

from repro.arm import ARM_CORES, estimate_all_arm_cores, estimate_arm_execution
from repro.eval import (
    evaluate_benchmark,
    format_table,
    measure_case,
    run_configurability_study,
)
from repro.eval.figures import PLATFORM_ORDER, EvaluationSuite
from repro.isa.instructions import HwUnit
from repro.microblaze import PAPER_CONFIG, run_program
from repro.power import (
    ARM_POWER,
    MICROBLAZE_POWER,
    WCLA_POWER,
    arm_energy,
    estimate_system_power,
    microblaze_energy,
    warp_energy,
)


# --------------------------------------------------------------------------- energy equation
class TestEnergyEquation:
    def test_microblaze_energy_scales_with_time(self):
        short = microblaze_energy(0.001, 85.0)
        long = microblaze_energy(0.002, 85.0)
        assert long.total_j == pytest.approx(2 * short.total_j)
        assert short.hardware_j == 0.0

    def test_idle_power_below_active(self):
        active_only = microblaze_energy(0.001, 85.0)
        with_idle = microblaze_energy(0.001, 85.0, idle_seconds=0.001)
        extra = with_idle.total_j - active_only.total_j
        active_increment = microblaze_energy(0.002, 85.0).total_j - active_only.total_j
        assert extra < active_increment

    def test_warp_energy_includes_all_figure5_terms(self):
        energy = warp_energy(mb_active_seconds=0.001, hw_seconds=0.0005,
                             clock_mhz=85.0, wcla_luts=200, uses_mac=True)
        assert energy.microblaze_active_j > 0
        assert energy.microblaze_idle_j > 0
        assert energy.hardware_j > 0
        assert energy.static_j > 0
        assert energy.total_mj == pytest.approx(energy.total_j * 1e3)

    def test_warp_uses_less_energy_when_much_faster(self):
        software = microblaze_energy(0.010, 85.0)
        warp = warp_energy(mb_active_seconds=0.001, hw_seconds=0.001,
                           clock_mhz=85.0, wcla_luts=300, uses_mac=True)
        assert warp.total_j < software.total_j
        assert warp.normalized_to(software) < 0.6

    def test_wcla_power_model_monotone(self):
        assert WCLA_POWER.active_mw(100, False) < WCLA_POWER.active_mw(400, False)
        assert WCLA_POWER.active_mw(100, True) > WCLA_POWER.active_mw(100, False)

    def test_arm_energy(self):
        energy = arm_energy(0.001, ARM_POWER["ARM11"])
        assert energy.total_j == pytest.approx(
            ARM_POWER["ARM11"].active_mw * 1e-3 * 0.001)


class TestXPowerReport:
    def test_component_report(self, compiled_small_programs):
        result = run_program(compiled_small_programs["canrdr"], PAPER_CONFIG)
        report = estimate_system_power(result)
        assert report.dynamic_mw > 0
        assert report.total_mw > report.dynamic_mw
        assert "MicroBlaze core" in report.render()
        assert report.dynamic_mw <= MICROBLAZE_POWER.active_mw(85.0) + 1e-9


# --------------------------------------------------------------------------- ARM models
class TestArmModels:
    def test_all_cores_present(self):
        assert set(ARM_CORES) == {"ARM7", "ARM9", "ARM10", "ARM11"}

    def test_faster_cores_finish_sooner(self, compiled_small_programs):
        result = run_program(compiled_small_programs["matmul"], PAPER_CONFIG)
        estimates = estimate_all_arm_cores(result)
        assert estimates["ARM7"].seconds > estimates["ARM9"].seconds \
            > estimates["ARM10"].seconds > estimates["ARM11"].seconds

    def test_cpi_in_plausible_range(self, compiled_small_programs):
        result = run_program(compiled_small_programs["bitmnp"], PAPER_CONFIG)
        for name, estimate in estimate_all_arm_cores(result).items():
            assert 0.8 <= estimate.cpi <= 2.5, name
            assert estimate.instructions <= result.instructions
            assert estimate.energy_j > 0

    def test_arm11_beats_plain_microblaze(self, compiled_small_programs):
        result = run_program(compiled_small_programs["idct"], PAPER_CONFIG)
        estimate = estimate_arm_execution(result, ARM_CORES["ARM11"])
        assert estimate.seconds < result.time_seconds


# --------------------------------------------------------------------------- evaluation harness
class TestEvaluationHarness:
    @pytest.fixture(scope="class")
    def small_suite(self, small_benchmarks):
        suite = EvaluationSuite()
        for name in ("brev", "canrdr", "matmul"):
            suite.evaluations.append(evaluate_benchmark(small_benchmarks[name]))
        return suite

    def test_checksums_match(self, small_suite):
        assert small_suite.all_checksums_match

    def test_figure6_structure_and_shape(self, small_suite):
        rows = small_suite.figure6_rows()
        assert rows[-1][0] == "Average:"
        assert len(rows) == len(small_suite.evaluations) + 1
        for item in small_suite.evaluations:
            speedups = item.speedups()
            assert speedups["MicroBlaze"] == pytest.approx(1.0)
            assert speedups["MicroBlaze (Warp)"] > 1.0
            assert speedups["ARM11"] > speedups["ARM9"] > speedups["ARM7"]
        table = small_suite.figure6_table()
        assert "Benchmark" in table and "MicroBlaze (Warp)" in table

    def test_figure7_structure_and_shape(self, small_suite):
        for item in small_suite.evaluations:
            normalized = item.normalized_energy()
            assert normalized["MicroBlaze"] == pytest.approx(1.0)
            # The plain MicroBlaze is the most energy-hungry platform.
            for name in PLATFORM_ORDER:
                assert normalized[name] <= 1.0 + 1e-9
            # The ARM11 is the second most energy-hungry platform (paper claim).
            others = [normalized[n] for n in ("ARM7", "ARM9", "ARM10",
                                              "MicroBlaze (Warp)")]
            assert normalized["ARM11"] >= max(others) * 0.9
        assert "Benchmark" in small_suite.figure7_table()

    def test_aggregate_claims_computable(self, small_suite):
        assert small_suite.average_warp_speedup() > 1.0
        assert 0.0 < small_suite.average_warp_energy_reduction() < 1.0
        assert small_suite.arm11_speed_advantage_over_warp() > 0.0
        assert "paper" in small_suite.claims_summary()

    def test_report_formatting(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3.25]])
        assert "a" in table and "2.50" in table


# --------------------------------------------------------------------------- Section 2 study
class TestSection2Study:
    def test_brev_and_matmul_slow_down(self):
        study = run_configurability_study(small=True)
        brev = study.entry("brev")
        matmul = study.entry("matmul")
        assert brev.slowdown > 1.3
        assert matmul.slowdown > 1.1
        assert brev.removed_units == (HwUnit.BARREL_SHIFTER, HwUnit.MULTIPLIER)
        assert matmul.removed_units == (HwUnit.MULTIPLIER,)
        assert "Slowdown" in study.table()

    def test_single_case_measurement(self):
        entry = measure_case("bitmnp", (HwUnit.BARREL_SHIFTER,), 1.0, small=True)
        assert entry.slowdown > 1.0
