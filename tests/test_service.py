"""The warp service: jobs, scheduler, artifact cache, worker pool, CLI."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.apps import build_benchmark
from repro.caching import BoundedLRU, lru_memoize
from repro.compiler import (clear_compile_cache, compile_cache_stats,
                            compile_source, compile_source_cached)
from repro.fabric import DEFAULT_WCLA
from repro.fabric.architecture import WclaParameters
from repro.microblaze import MINIMAL_CONFIG, PAPER_CONFIG
from repro.service import (
    CadArtifactCache,
    JobScheduler,
    JobSpecError,
    WarpJob,
    WarpService,
    artifact_cache_key,
    canonical_body_form,
    execute_job,
    suite_sweep_jobs,
)
from repro.service.cli import load_job_file, main
from repro.warp import WarpProcessor


# --------------------------------------------------------------------------- shared LRU
class TestBoundedLRU:
    def test_hit_miss_accounting_and_eviction(self):
        lru = BoundedLRU(maxsize=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1
        lru.put("c", 3)  # evicts "b" (least recently used)
        assert lru.get("b") is None
        assert lru.get("c") == 3
        assert (lru.hits, lru.misses, lru.evictions) == (2, 2, 1)

    def test_clear_resets_everything(self):
        lru = BoundedLRU(maxsize=4)
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0
        assert lru.counters() == (0, 0)

    def test_memoize_decorator_shares_the_primitive(self):
        calls = []

        @lru_memoize(maxsize=8)
        def square(x):
            calls.append(x)
            return x * x

        assert square(3) == 9
        assert square(3) == 9
        assert calls == [3]
        assert isinstance(square.cache, BoundedLRU)
        square.cache_clear()
        assert square(3) == 9
        assert calls == [3, 3]

    def test_compile_cache_is_a_bounded_lru(self):
        """Satellite: compile_source_cached and the artifact cache share
        one LRU implementation with an explicit clear()."""
        clear_compile_cache()
        bench = build_benchmark("brev", small=True)
        compile_source_cached(bench.source, name="brev", config=PAPER_CONFIG)
        compile_source_cached(bench.source, name="brev", config=PAPER_CONFIG)
        stats = compile_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        clear_compile_cache()
        assert compile_cache_stats()["size"] == 0


# --------------------------------------------------------------------------- jobs
class TestWarpJob:
    def test_exactly_one_workload_required(self):
        with pytest.raises(JobSpecError):
            WarpJob(name="neither")
        with pytest.raises(JobSpecError):
            WarpJob(name="both", benchmark="brev", source="int main() {}")

    def test_dedup_key_ignores_name_and_priority(self):
        a = WarpJob(name="a", benchmark="brev", small=True, priority=1)
        b = WarpJob(name="b", benchmark="brev", small=True, priority=9)
        c = WarpJob(name="c", benchmark="brev", small=False)
        d = WarpJob(name="d", benchmark="brev", small=True,
                    config=MINIMAL_CONFIG)
        assert a.dedup_key() == b.dedup_key()
        assert a.dedup_key() != c.dedup_key()
        assert a.dedup_key() != d.dedup_key()

    def test_jobs_are_picklable(self):
        import pickle
        job = WarpJob(name="a", benchmark="brev", small=True)
        assert pickle.loads(pickle.dumps(job)) == job

    def test_suite_sweep_enumerates_the_cross_product(self):
        jobs = suite_sweep_jobs(configs=[("paper", PAPER_CONFIG),
                                         ("minimal", MINIMAL_CONFIG)],
                                engines=("threaded", "interp"),
                                benchmarks=["brev", "matmul"], small=True)
        assert len(jobs) == 2 * 2 * 2
        assert len({job.name for job in jobs}) == len(jobs)


# --------------------------------------------------------------------------- scheduler
class TestJobScheduler:
    def test_dedup_and_priority_order(self):
        scheduler = JobScheduler(policy="priority")
        low = WarpJob(name="low", benchmark="brev", small=True, priority=0)
        high = WarpJob(name="high", benchmark="matmul", small=True, priority=5)
        twin = WarpJob(name="twin", benchmark="brev", small=True, priority=9)
        scheduler.add_many([low, high, twin])
        assert scheduler.num_submitted == 3
        assert scheduler.num_unique == 2
        plan = scheduler.plan()
        # The twin's priority 9 lifts the brev slot above the matmul slot.
        assert [slot.job.name for slot in plan] == ["low", "high"]
        assert plan[0].priority == 9
        assert [j.name for j in plan[0].duplicates] == ["twin"]

    def test_fifo_policy_keeps_submission_order(self):
        scheduler = JobScheduler(policy="fifo")
        scheduler.add_many([
            WarpJob(name="a", benchmark="brev", small=True, priority=0),
            WarpJob(name="b", benchmark="matmul", small=True, priority=99),
        ])
        assert [slot.job.name for slot in scheduler.plan()] == ["a", "b"]

    def test_duplicate_names_rejected(self):
        scheduler = JobScheduler()
        scheduler.add(WarpJob(name="a", benchmark="brev", small=True))
        with pytest.raises(ValueError, match="name"):
            scheduler.add(WarpJob(name="a", benchmark="matmul", small=True))

    def test_twin_result_keeps_its_own_label(self):
        """config_label is scheduling metadata (outside the dedup key), so
        a deduplicated twin's fanned-out result must carry its own label."""
        from repro.service.jobs import expand_duplicate
        from repro.service import ServiceResult
        primary = ServiceResult(job_name="a", workload="brev",
                                config_label="paper", engine="threaded",
                                speedup=2.0, cache_hits=3, cache_misses=1)
        twin = WarpJob(name="b", benchmark="brev", small=True,
                       config_label="my-label")
        expanded = expand_duplicate(primary, twin)
        assert expanded.job_name == "b"
        assert expanded.config_label == "my-label"
        assert expanded.deduped_from == "a"
        assert expanded.speedup == 2.0
        # Cache accounting stays with the job that actually executed.
        assert (expanded.cache_hits, expanded.cache_misses) == (0, 0)


# --------------------------------------------------------------------------- artifact cache
class TestArtifactCache:
    def _kernel_for(self, name, config=PAPER_CONFIG):
        bench = build_benchmark(name, small=True)
        program = compile_source(bench.source, name=name,
                                 config=config).program
        processor = WarpProcessor(config=config)
        result, profiler = processor.profile(program)
        from repro.decompile import decompile_and_extract
        return decompile_and_extract(program.text,
                                     profiler.most_critical_region())

    def test_canonical_form_is_address_independent_and_deterministic(self):
        kernel_a = self._kernel_for("brev")
        kernel_b = self._kernel_for("brev")
        assert canonical_body_form(kernel_a.body) \
            == canonical_body_form(kernel_b.body)
        assert artifact_cache_key(kernel_a, DEFAULT_WCLA) \
            == artifact_cache_key(kernel_b, DEFAULT_WCLA)

    def test_key_distinguishes_kernels_and_wcla(self):
        brev = self._kernel_for("brev")
        matmul = self._kernel_for("matmul")
        assert artifact_cache_key(brev, DEFAULT_WCLA) \
            != artifact_cache_key(matmul, DEFAULT_WCLA)
        other_wcla = WclaParameters(memory_ports=2)
        assert artifact_cache_key(brev, DEFAULT_WCLA) \
            != artifact_cache_key(brev, other_wcla)

    def test_warp_flow_hits_on_repeat_and_skips_cad(self):
        cache = CadArtifactCache()
        bench = build_benchmark("brev", small=True)
        program = compile_source(bench.source, name="brev",
                                 config=PAPER_CONFIG).program

        first = WarpProcessor(config=PAPER_CONFIG,
                              artifact_cache=cache).run(program.copy())
        assert first.partitioning.success
        assert not first.partitioning.cad_cache_hit
        assert cache.counters() == (0, 1)

        second = WarpProcessor(config=PAPER_CONFIG,
                               artifact_cache=cache).run(program.copy())
        assert second.partitioning.cad_cache_hit
        assert cache.counters() == (1, 1)
        # Served from cache, yet numerically identical.
        assert second.speedup == first.speedup
        assert second.partitioning.synthesis is first.partitioning.synthesis
        assert second.checksums_match
        # The modelled on-chip tool time is a property of the simulated
        # system, not of the host-side memoization.
        assert second.partitioning.dpm_seconds \
            == first.partitioning.dpm_seconds

    def test_clear_forces_cold_flow(self):
        cache = CadArtifactCache()
        bench = build_benchmark("brev", small=True)
        program = compile_source(bench.source, name="brev",
                                 config=PAPER_CONFIG).program
        WarpProcessor(config=PAPER_CONFIG,
                      artifact_cache=cache).run(program.copy())
        cache.clear()
        result = WarpProcessor(config=PAPER_CONFIG,
                               artifact_cache=cache).run(program.copy())
        assert not result.partitioning.cad_cache_hit
        assert cache.counters() == (0, 1)


# --------------------------------------------------------------------------- execution
class TestExecuteJob:
    def test_successful_job(self):
        cache = CadArtifactCache()
        job = WarpJob(name="brev-job", benchmark="brev", small=True)
        result = execute_job(job, cache)
        assert result.ok and result.partitioned and result.checksum_ok
        assert result.speedup > 1.0
        assert result.normalized_warp_energy < 1.0
        assert result.cache_misses == 1
        assert result.worker_pid == os.getpid()

    def test_failing_job_is_contained(self):
        job = WarpJob(name="bad", source="int main( {")
        result = execute_job(job, CadArtifactCache())
        assert not result.ok
        assert "ParseError" in result.error

    def test_unpartitionable_job_reports_reason(self):
        # A straight-line kernel has no loop for the profiler to find.
        job = WarpJob(name="flat", source="int main() { return 7; }")
        result = execute_job(job, CadArtifactCache())
        assert result.ok
        assert not result.partitioned
        assert result.partition_reason
        assert result.speedup == 1.0


class TestWarpServiceSerial:
    def test_batch_with_dedup_failure_and_report(self):
        jobs = [
            WarpJob(name="brev", benchmark="brev", small=True),
            WarpJob(name="brev-twin", benchmark="brev", small=True),
            WarpJob(name="matmul", benchmark="matmul", small=True),
            WarpJob(name="broken", source="int main( {"),
        ]
        service = WarpService(workers=0, artifact_cache=CadArtifactCache())
        report = service.run(jobs)
        assert report.mode == "serial"
        assert [r.job_name for r in report.results] \
            == [job.name for job in jobs]
        by_name = {r.job_name: r for r in report.results}
        assert by_name["brev-twin"].deduped_from == "brev"
        assert by_name["brev-twin"].speedup == by_name["brev"].speedup
        assert not by_name["broken"].ok
        assert report.num_failed == 1
        # Report plumbing: figure-style rows and JSON round trip.
        rows = report.speedup_rows()
        assert rows[-1][0] == "Average:"
        plain = json.loads(report.to_json())
        assert plain["num_jobs"] == 4
        assert "speedup" in plain["tables"]

    def test_second_sweep_is_served_from_cache(self):
        jobs = suite_sweep_jobs(benchmarks=["brev", "matmul", "idct"],
                                small=True)
        service = WarpService(workers=0, artifact_cache=CadArtifactCache())
        first = service.run(jobs)
        second = service.run(jobs)
        assert first.cache_hit_rate == 0.0
        assert second.cache_hit_rate == 1.0
        assert all(r.cad_cache_hit for r in second.results)


# --------------------------------------------------------------------------- the pool
def _crashing_worker(job):
    """Test worker: kills its process for the poisoned job (bypassing all
    exception handling, like a segfault would)."""
    if job.name == "poison":
        os._exit(17)
    from repro.service.pool import _worker_entry
    return _worker_entry(job)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="worker-crash test relies on fork inheritance")
class TestWarpServicePool:
    def test_pooled_results_match_serial(self):
        jobs = suite_sweep_jobs(benchmarks=["brev", "matmul"], small=True)
        serial = WarpService(workers=0,
                             artifact_cache=CadArtifactCache()).run(jobs)
        with WarpService(workers=2) as pooled_service:
            pooled = pooled_service.run(jobs)
        assert pooled.mode == "pool"
        for a, b in zip(serial.results, pooled.results):
            assert a.job_name == b.job_name
            assert a.speedup == b.speedup
            assert a.normalized_warp_energy == b.normalized_warp_energy

    def test_content_affinity_keeps_worker_caches_warm(self):
        jobs = suite_sweep_jobs(benchmarks=["brev", "matmul", "idct"],
                                small=True)
        with WarpService(workers=2) as service:
            service.run(jobs)
            second = service.run(jobs)
        # Same content routes to the same (warm) worker: full hit rate.
        assert second.cache_hit_rate == 1.0

    def test_worker_crash_yields_failed_result_not_dead_pool(self):
        jobs = [
            WarpJob(name="before", benchmark="brev", small=True),
            WarpJob(name="poison", benchmark="matmul", small=True),
            WarpJob(name="after", benchmark="idct", small=True),
        ]
        with WarpService(workers=1, worker_fn=_crashing_worker) as service:
            report = service.run(jobs)
            by_name = {r.job_name: r for r in report.results}
            assert by_name["before"].ok
            assert not by_name["poison"].ok
            assert "died" in by_name["poison"].error
            assert by_name["after"].ok
            # The service survives for the next batch.
            again = service.run([WarpJob(name="healthy", benchmark="brev",
                                         small=True)])
            assert again.results[0].ok


# --------------------------------------------------------------------------- CLI
class TestCli:
    def test_suite_subcommand_writes_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(["suite", "--benchmarks", "brev", "--small",
                     "--workers", "0", "--repeat", "2", "--quiet",
                     "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["num_jobs"] == 1
        # The second repeat was served from the CAD cache.
        assert payload["cache"]["hit_rate"] == 1.0

    def test_jobs_subcommand(self, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "fast", "benchmark": "brev", "small": True,
             "priority": 2},
            {"name": "no-units", "benchmark": "brev", "small": True,
             "config": {"use_barrel_shifter": False,
                        "use_multiplier": False},
             "config_label": "minimal-ish"},
        ]}))
        out = tmp_path / "report.json"
        code = main(["jobs", str(jobfile), "--quiet", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        names = {job["job_name"] for job in payload["jobs"]}
        assert names == {"fast", "no-units"}

    def test_job_file_validation(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"jobs": [{"name": "x",
                                             "benchmark": "brev",
                                             "bogus_field": 1}]}))
        with pytest.raises(JobSpecError, match="bogus_field"):
            load_job_file(bad)
        bad.write_text(json.dumps({"jobs": [{"name": "x", "benchmark": "b",
                                             "config": {"not_a_field": 1}}]}))
        with pytest.raises(JobSpecError, match="not_a_field"):
            load_job_file(bad)
        # Structured config values and non-integer scheduling fields are
        # rejected with a clean JobSpecError, not a raw traceback later.
        bad.write_text(json.dumps({"jobs": [
            {"name": "x", "benchmark": "b",
             "config": {"timings": {"load": 2}}}]}))
        with pytest.raises(JobSpecError, match="scalar"):
            load_job_file(bad)
        bad.write_text(json.dumps({"jobs": [
            {"name": "x", "benchmark": "b", "priority": "high"}]}))
        with pytest.raises(JobSpecError, match="integer"):
            load_job_file(bad)

    def test_failing_jobs_set_exit_code(self, tmp_path):
        jobfile = tmp_path / "jobs.json"
        jobfile.write_text(json.dumps({"jobs": [
            {"name": "broken", "source": "int main( {"},
        ]}))
        assert main(["jobs", str(jobfile), "--quiet"]) == 1

    def test_unknown_config_name_rejected(self):
        assert main(["suite", "--configs", "nonsense", "--quiet"]) == 2


# --------------------------------------------------------------------------- integration
class TestMultiprocessorSharedCache:
    def test_cores_share_one_cad_flow(self, compiled_small_programs):
        """Two cores running the same application: the shared DPM performs
        the CAD flow once and serves the second core from the cache."""
        from repro.warp import MultiProcessorWarpSystem
        cache = CadArtifactCache()
        system = MultiProcessorWarpSystem(num_cores=2, artifact_cache=cache)
        result = system.run([compiled_small_programs["brev"].copy(),
                             compiled_small_programs["brev"].copy()])
        assert all(core.partitioning.success for core in result.per_core)
        assert not result.per_core[0].partitioning.cad_cache_hit
        assert result.per_core[1].partitioning.cad_cache_hit
        assert cache.counters() == (1, 1)
        assert result.per_core[0].speedup == result.per_core[1].speedup
