"""Chaos differential harness — seeded fault injection vs. recovery.

The acceptance bar of the fault-injection PR: under deterministic,
seeded fault plans (wire truncations and resets, store corruption and
publish orphans, transient CAD-stage and worker faults, worker kills,
hung workers) the recovery policies must keep the *canonical* report —
the physics the paper cares about — bit-identical to a fault-free run.
Graceful degradation means slower, never different.

And the inverse: with recovery disabled (no retry policy, quarantine
off, budgets exhausted), faults must surface as *typed, named errors* —
never hangs, never silent divergence.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

import contextlib

from repro import chaos
from repro.cad import CadArtifactCache
from repro.chaos import (
    ChaosError,
    FaultPlan,
    FaultRule,
    Injection,
    SITE_CAD_STAGE,
    SITE_MESH_MEMBER,
    SITE_PEER_FETCH,
    SITE_STORE_LOAD,
    SITE_STORE_PUBLISH,
    SITE_WIRE_READ,
    SITE_WIRE_WRITE,
    SITE_WORKER_JOB,
)
from repro.microblaze.engines import engine_names
from repro.retry import DEFAULT_REMOTE_POLICY, RetryPolicy
from repro.server import DiskArtifactStore, GatewayClient, WarpGateway, \
    start_gateway_thread
from repro.server.client import close_pooled_clients
from repro.service import WarpJob, WarpService, execute_job


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Chaos plans are process-global state; never leak one across tests."""
    yield
    chaos.clear_plan()
    chaos.clear_environment_plan()


def _parity_jobs():
    """A small but representative batch: duplicate content (dedup path),
    a custom stage list, two different benchmarks."""
    return [
        WarpJob(name="brev", benchmark="brev", small=True, priority=2),
        WarpJob(name="brev-twin", benchmark="brev", small=True),
        WarpJob(name="idct-greedy", benchmark="idct", small=True,
                stages=("decompile", "synthesis", "place", "route-greedy",
                        "implement", "binary-update")),
    ]


def _baseline(jobs, store_path=None):
    store = DiskArtifactStore(store_path) if store_path else None
    cache = CadArtifactCache(store=store) if store else CadArtifactCache()
    return WarpService(workers=0, artifact_cache=cache).run(jobs)


# ------------------------------------------------------------- plan machinery
class TestFaultPlanMachinery:
    def test_rule_validation_is_loud(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="warp-core", kind="error")
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site=SITE_WORKER_JOB, kind="bitrot")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site=SITE_WORKER_JOB, kind="error", probability=0.0)
        with pytest.raises(ValueError, match="max_fires"):
            FaultRule(site=SITE_WORKER_JOB, kind="error", max_fires=0)

    @staticmethod
    def _fire_script(plan):
        """Drive a fixed site sequence, recording what each visit did."""
        trace = []
        for site in (SITE_CAD_STAGE, SITE_STORE_LOAD, SITE_CAD_STAGE,
                     SITE_STORE_PUBLISH, SITE_CAD_STAGE, SITE_STORE_LOAD) * 5:
            try:
                injection = plan.fire(site, label="script")
            except ChaosError:
                trace.append("error")
            else:
                trace.append(injection.kind if injection else None)
        return trace

    def test_same_seed_fires_identically(self):
        rules = [
            FaultRule(site=SITE_CAD_STAGE, kind="error", probability=0.3,
                      max_fires=3),
            FaultRule(site=SITE_STORE_LOAD, kind="corrupt", probability=0.4),
            FaultRule(site=SITE_STORE_PUBLISH, kind="orphan",
                      probability=0.5),
        ]
        first = self._fire_script(FaultPlan(seed=7, rules=rules))
        second = self._fire_script(FaultPlan(seed=7, rules=rules))
        different = self._fire_script(FaultPlan(seed=8, rules=rules))
        assert first == second
        assert any(entry is not None for entry in first)
        assert first != different  # the seed is load-bearing

    def test_json_round_trip_preserves_behavior(self):
        plan = chaos.standard_plan(5)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        assert self._fire_script(clone) \
            == self._fire_script(chaos.standard_plan(5))

    def test_in_process_fire_budget_is_bounded(self):
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_WORKER_JOB, kind="error", max_fires=2)])
        for _ in range(2):
            with pytest.raises(ChaosError):
                plan.fire(SITE_WORKER_JOB)
        assert plan.fire(SITE_WORKER_JOB) is None  # budget spent
        assert plan.injections == {(SITE_WORKER_JOB, "error"): 2}

    def test_budget_dir_spans_plan_instances(self, tmp_path):
        """Marker-file budgets make "exactly once" hold across processes;
        two instances sharing the directory model two pool workers."""
        spec = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_WORKER_JOB, kind="error", max_fires=1)],
            budget_dir=tmp_path).to_json()
        worker_a = FaultPlan.from_json(spec)
        worker_b = FaultPlan.from_json(spec)
        with pytest.raises(ChaosError):
            worker_a.fire(SITE_WORKER_JOB)
        assert worker_b.fire(SITE_WORKER_JOB) is None
        assert worker_a.fire(SITE_WORKER_JOB) is None

    def test_mangle_truncates_and_corrupts(self):
        blob = bytes(range(64))
        truncated = Injection(site=SITE_WIRE_WRITE, kind="truncate",
                              fraction=0.5).mangle(blob)
        assert truncated == blob[:32]
        corrupted = Injection(site=SITE_STORE_LOAD, kind="corrupt",
                              fraction=0.25).mangle(blob)
        assert len(corrupted) == len(blob)
        assert corrupted != blob
        assert corrupted[16] == blob[16] ^ 0xFF

    def test_no_plan_means_no_injection(self):
        assert chaos.ACTIVE_PLAN is None
        assert chaos.fire(SITE_WORKER_JOB, label="anything") is None

    def test_active_plan_restores_and_exports(self):
        plan = chaos.standard_plan(1)
        with chaos.active_plan(plan, export=True):
            assert chaos.ACTIVE_PLAN is plan
            assert chaos.PLAN_ENV_VAR in os.environ
        assert chaos.ACTIVE_PLAN is None
        assert chaos.PLAN_ENV_VAR not in os.environ

    def test_ensure_process_plan_reads_the_environment(self):
        chaos.clear_plan()
        os.environ[chaos.PLAN_ENV_VAR] = chaos.standard_plan(9).to_json()
        try:
            chaos.ensure_process_plan()
            assert chaos.ACTIVE_PLAN is not None
            assert chaos.ACTIVE_PLAN.seed == 9
        finally:
            chaos.clear_plan()
            chaos.clear_environment_plan()


# ------------------------------------------------------------------ retry policy
class TestRetryPolicy:
    def test_schedules_are_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=3)
        a, b = policy.delays(), policy.delays()
        assert [a.next_delay() for _ in range(4)] \
            == [b.next_delay() for _ in range(4)]
        reseeded = RetryPolicy(max_attempts=5, seed=4).delays()
        assert reseeded.next_delay() != policy.delays().next_delay()

    def test_backoff_grows_and_is_capped(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.05,
                             max_delay_s=0.4, jitter=0.0)
        schedule = policy.delays()
        delays = [schedule.next_delay() for _ in range(6)]
        assert delays[0] == pytest.approx(0.05)
        assert delays[1] == pytest.approx(0.10)
        assert all(x <= 0.4 + 1e-9 for x in delays)
        assert delays[-1] == pytest.approx(0.4)

    def test_occupancy_stretches_the_delay(self):
        policy = RetryPolicy(jitter=0.0)
        empty = policy.delays().next_delay(occupancy=0.0)
        full = policy.delays().next_delay(occupancy=1.0)
        assert full == pytest.approx(2 * empty)

    def test_give_up_after_the_attempt_budget(self):
        schedule = RetryPolicy(max_attempts=3).delays()
        verdicts = []
        for _ in range(4):
            verdicts.append(schedule.give_up())
            schedule.next_delay()
        assert verdicts == [False, False, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------- serial recovery policies
class TestSerialRecovery:
    def test_transient_cad_stage_faults_are_absorbed(self):
        job = WarpJob(name="j", benchmark="brev", small=True)
        clean = execute_job(job, CadArtifactCache())
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_CAD_STAGE, kind="error", max_fires=2)])
        with chaos.active_plan(plan):
            faulted = execute_job(job, CadArtifactCache())
        assert faulted.ok
        assert faulted.canonical() == clean.canonical()
        assert plan.injections == {(SITE_CAD_STAGE, "error"): 2}

    def test_transient_worker_faults_are_retried_and_counted(self):
        job = WarpJob(name="j", benchmark="brev", small=True)
        clean = execute_job(job, CadArtifactCache())
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_WORKER_JOB, kind="error", max_fires=2)])
        with chaos.active_plan(plan):
            faulted = execute_job(job, CadArtifactCache())
        assert faulted.ok
        assert faulted.retries == 2  # surfaced in the resilience counters
        assert faulted.canonical() == clean.canonical()

    def test_exhausted_budget_is_a_typed_error_not_a_hang(self):
        """Recovery disabled (faults beyond every retry budget) must
        yield a failed result naming the fault type — never a hang."""
        job = WarpJob(name="doomed", benchmark="brev", small=True)
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_WORKER_JOB, kind="error")])  # unlimited
        with chaos.active_plan(plan):
            result = execute_job(job, CadArtifactCache())
        assert not result.ok
        assert "ChaosError" in result.error
        assert "worker-job" in result.error

    def test_unrecovered_stage_fault_is_typed_too(self):
        job = WarpJob(name="doomed", benchmark="brev", small=True)
        plan = FaultPlan(seed=0, rules=[
            FaultRule(site=SITE_CAD_STAGE, kind="error", match="route")])
        with chaos.active_plan(plan):
            result = execute_job(job, CadArtifactCache())
        assert not result.ok
        assert "ChaosError" in result.error


# --------------------------------------------------------- differential parity
class TestDifferentialParity:
    """The tentpole proof: seeded fault plans + recovery == fault-free."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_standard_plan_is_invisible_in_the_report(self, seed, tmp_path):
        jobs = _parity_jobs()
        baseline = _baseline(jobs, tmp_path / "clean-store")
        plan = chaos.standard_plan(seed)
        with chaos.active_plan(plan):
            store = DiskArtifactStore(tmp_path / "chaos-store")
            chaotic = WarpService(
                workers=0,
                artifact_cache=CadArtifactCache(store=store)).run(jobs)
        assert chaotic.canonical() == baseline.canonical()
        assert plan.total_injections() > 0, \
            "seed fired nothing — pick a different seed"

    def test_wire_faults_with_retry_are_invisible(self):
        jobs = _parity_jobs()
        baseline = _baseline(jobs)
        plan = FaultPlan(seed=5, rules=[
            # match= keeps the handshake clean: the constructor connects
            # outside the retry loop by design (wrong peer ≠ transient).
            FaultRule(site=SITE_WIRE_WRITE, kind="truncate", max_fires=1,
                      match="submit"),
            FaultRule(site=SITE_WIRE_READ, kind="reset", max_fires=1),
        ])
        retry = RetryPolicy(max_attempts=5, base_delay_s=0.01,
                            max_delay_s=0.05)
        gateway = WarpGateway(port=0, workers=0)
        thread = start_gateway_thread(gateway)
        try:
            with GatewayClient(gateway.address, retry=retry) as client:
                with chaos.active_plan(plan):
                    report = client.submit(jobs, wait=True)
        finally:
            gateway.request_stop()
            thread.join(timeout=30)
            close_pooled_clients()
        assert report.canonical() == baseline.canonical()
        assert plan.total_injections() == 2

    def test_wire_fault_without_retry_is_a_typed_error(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site=SITE_WIRE_READ, kind="reset", max_fires=1)])
        gateway = WarpGateway(port=0, workers=0)
        thread = start_gateway_thread(gateway)
        try:
            with GatewayClient(gateway.address) as client:  # no retry
                with chaos.active_plan(plan):
                    with pytest.raises(ConnectionResetError):
                        client.cache_stats()
        finally:
            gateway.request_stop()
            thread.join(timeout=30)
            close_pooled_clients()

    def test_store_corruption_is_recomputed_not_propagated(self, tmp_path):
        """A corrupted disk entry is quarantined and the value recomputed;
        the warm-run report matches the cold one exactly."""
        job = WarpJob(name="j", benchmark="brev", small=True)
        cold = execute_job(job, CadArtifactCache(
            store=DiskArtifactStore(tmp_path)))
        plan = FaultPlan(seed=2, rules=[
            FaultRule(site=SITE_STORE_LOAD, kind="corrupt", max_fires=2)])
        store = DiskArtifactStore(tmp_path)
        with chaos.active_plan(plan):
            warm = execute_job(job, CadArtifactCache(store=store))
        assert warm.ok
        assert warm.canonical() == cold.canonical()
        assert store.corrupt_entries == 2
        quarantined = list(tmp_path.rglob("*.quarantine"))
        assert len(quarantined) == 2

    def test_publish_orphans_degrade_to_recompute(self, tmp_path):
        """Entries orphaned mid-publish (tmp written, never renamed) are
        invisible to correctness and swept by the next open's GC."""
        job = WarpJob(name="j", benchmark="brev", small=True)
        clean = execute_job(job, CadArtifactCache())
        plan = FaultPlan(seed=4, rules=[
            FaultRule(site=SITE_STORE_PUBLISH, kind="orphan")])
        with chaos.active_plan(plan):
            faulted = execute_job(job, CadArtifactCache(
                store=DiskArtifactStore(tmp_path)))
        assert faulted.canonical() == clean.canonical()
        orphans = list(tmp_path.rglob(".*.tmp"))
        assert orphans, "every publish should have orphaned a tmp file"
        for orphan in orphans:  # age past the GC cutoff deterministically
            os.utime(orphan, (time.time() - 7200, time.time() - 7200))
        reopened = DiskArtifactStore(tmp_path)
        # The orphaned schema marker is republished (renamed away) at
        # reopen rather than collected; entry orphans are GC'd.
        entry_orphans = [o for o in orphans if "WARPDISK" not in o.name]
        assert reopened.orphan_tmp_removed == len(entry_orphans)
        assert not list(tmp_path.rglob(".*.tmp"))


# ------------------------------------------------------------------ pool chaos
def _sleepy_worker(job):
    """Test worker: wedges the process on the poisoned job (a hang the
    watchdog, not exception handling, must resolve)."""
    if job.name == "hang":
        time.sleep(60)
    from repro.service.pool import _worker_entry
    return _worker_entry(job)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="pool chaos tests rely on fork inheritance")
class TestPoolChaos:
    def test_watchdog_kills_hung_worker_and_retries_innocents(self):
        jobs = [
            WarpJob(name="hang", benchmark="brev", small=True,
                    timeout_s=1.0, priority=10),
            WarpJob(name="innocent", benchmark="matmul", small=True),
        ]
        with WarpService(workers=1, worker_fn=_sleepy_worker) as service:
            started = time.monotonic()
            report = service.run(jobs)
            elapsed = time.monotonic() - started
        by_name = {r.job_name: r for r in report.results}
        assert not by_name["hang"].ok
        assert by_name["hang"].timeouts == 1
        assert "watchdog" in by_name["hang"].error
        assert "1s" in by_name["hang"].error  # names the budget
        # The innocent queued behind the hang is retried in isolation,
        # not blamed for its shard-mate's timeout.
        assert by_name["innocent"].ok
        assert by_name["innocent"].retries == 1
        assert report.total_timeouts == 1
        assert elapsed < 30, "the watchdog must preempt the hang"
        # A fresh service (the shard was killed) still executes cleanly.
        with WarpService(workers=1, worker_fn=_sleepy_worker) as service:
            again = service.run([WarpJob(name="healthy", benchmark="brev",
                                         small=True)])
        assert again.num_failed == 0

    def test_timeout_metadata_is_not_part_of_job_identity(self):
        a = WarpJob(name="a", benchmark="brev", small=True, timeout_s=1.0)
        b = WarpJob(name="b", benchmark="brev", small=True, timeout_s=9.0)
        assert a.dedup_key() == b.dedup_key()
        with pytest.raises(Exception, match="timeout_s"):
            WarpJob(name="bad", benchmark="brev", timeout_s=-1.0)

    @pytest.mark.parametrize("engine", engine_names())
    def test_injected_worker_kill_is_invisible_per_engine(self, engine,
                                                          tmp_path):
        """Satellite: for every registered execution engine, killing one
        pool worker mid-batch (exit 43, bypassing all handlers) leaves
        the canonical report identical to the fault-free run."""
        jobs = [
            WarpJob(name=f"{engine}-brev", benchmark="brev", small=True,
                    engine=engine),
            WarpJob(name=f"{engine}-matmul", benchmark="matmul", small=True,
                    engine=engine),
        ]
        baseline = _baseline(jobs)
        plan = FaultPlan(seed=9, rules=[
            FaultRule(site=SITE_WORKER_JOB, kind="kill", max_fires=1)],
            budget_dir=tmp_path)
        with chaos.active_plan(plan, export=True):
            with WarpService(workers=2) as service:
                chaotic = service.run(jobs)
        assert chaotic.canonical() == baseline.canonical()
        # Exactly one kill was claimed (marker file), and the victim's
        # isolated retry is visible in the resilience counters.
        assert len(list(tmp_path.iterdir())) == 1
        assert chaotic.total_retries >= 1
        assert chaotic.num_failed == 0

    def test_standard_plan_parity_under_a_pool(self, tmp_path):
        jobs = _parity_jobs()
        baseline = _baseline(jobs)
        plan = chaos.standard_plan(17, budget_dir=tmp_path)
        with chaos.active_plan(plan, export=True):
            with WarpService(workers=2) as service:
                chaotic = service.run(jobs)
        assert chaotic.canonical() == baseline.canonical()


# ------------------------------------------------------------------ mesh chaos
@contextlib.contextmanager
def _mesh_gateway(store_path, peers=None):
    """A gateway over its own explicit disk store on a daemon thread."""
    service = WarpService(workers=0, artifact_cache=CadArtifactCache(
        store=DiskArtifactStore(store_path)))
    gateway = WarpGateway(port=0, service=service, peers=peers)
    thread = start_gateway_thread(gateway)
    try:
        yield gateway
    finally:
        gateway.request_stop()
        thread.join(timeout=30)
        close_pooled_clients()


class TestMeshChaos:
    """Mesh fault drills: peer-fetch failures and member drops degrade to
    local recompute — the canonical report stays identical to fault-free
    — and every injected failure is visible in the mesh counters *and*
    the live ``metrics`` scrape."""

    def test_peer_fetch_faults_degrade_to_local_recompute(self, tmp_path):
        jobs = _parity_jobs()
        baseline = _baseline(jobs, tmp_path / "clean-store")
        plan = FaultPlan(seed=6, rules=[
            FaultRule(site=SITE_PEER_FETCH, kind="error", max_fires=2)])
        with _mesh_gateway(tmp_path / "g1") as warm_gateway:
            with GatewayClient(warm_gateway.address) as client:
                assert client.submit(jobs).num_failed == 0  # warm the peer
            with _mesh_gateway(tmp_path / "g2",
                               peers=[warm_gateway.address]) as cold_gateway:
                with chaos.active_plan(plan):
                    with GatewayClient(cold_gateway.address) as client:
                        chaotic = client.submit(jobs)
                        metrics = client.metrics(include_spans=False)
        assert chaotic.num_failed == 0
        assert chaotic.canonical() == baseline.canonical()
        assert plan.injections == {(SITE_PEER_FETCH, "error"): 2}
        # The two failed attempts were counted and recomputed locally;
        # once the budget was spent, later lookups reached the peer.
        mesh = metrics["mesh"]
        assert mesh["peer_fetch_failures"] == 2
        assert mesh["peer_fetch_hits"] > 0
        assert chaotic.cache_peer_hits == mesh["peer_fetch_hits"]
        samples = metrics["metrics"].get(
            "warp_mesh_peer_fetches_total", {}).get("samples", [])
        by_result = {sample["labels"].get("result"): sample["value"]
                     for sample in samples}
        assert by_result.get("error") == 2.0
        assert by_result.get("hit", 0.0) > 0

    def test_injected_member_drop_recovers_by_recompute_and_rejoin(
            self, tmp_path):
        jobs = _parity_jobs()
        baseline = _baseline(jobs, tmp_path / "clean-store")
        plan = FaultPlan(seed=8, rules=[
            FaultRule(site=SITE_MESH_MEMBER, kind="reset", max_fires=1)])
        with _mesh_gateway(tmp_path / "g1") as warm_gateway:
            with GatewayClient(warm_gateway.address) as client:
                assert client.submit(jobs).num_failed == 0
            with _mesh_gateway(tmp_path / "g2",
                               peers=[warm_gateway.address]) as cold_gateway:
                with chaos.active_plan(plan):
                    with GatewayClient(cold_gateway.address) as client:
                        chaotic = client.submit(jobs)
                # The first fetch attempt hit the injected reset: the
                # member was dropped, so the whole batch recomputed
                # locally — invisibly, and visibly counted.
                with GatewayClient(cold_gateway.address) as client:
                    view = client.mesh_peers()
                    assert view["member_drops"] == 1
                    assert view["members"] == [cold_gateway.address]
                    metrics = client.metrics(include_spans=False)
                    samples = metrics["metrics"].get(
                        "warp_mesh_member_drops_total", {}).get("samples", [])
                    assert sum(s["value"] for s in samples) >= 1.0
                    # Recovery: an explicit rejoin restores the mesh.
                    rejoined = client.mesh_join(warm_gateway.address)
                    assert set(rejoined["members"]) \
                        == {warm_gateway.address, cold_gateway.address}
                    assert rejoined["ring_version"] > view["ring_version"]
        assert chaotic.num_failed == 0
        assert chaotic.canonical() == baseline.canonical()
        assert chaotic.cache_peer_hits == 0  # everything recomputed locally
        assert plan.injections == {(SITE_MESH_MEMBER, "reset"): 1}
