"""Tests for the MicroBlaze system simulator."""

from __future__ import annotations

import pytest

from repro.isa import HwUnit, assemble
from repro.microblaze import (
    BlockRAM,
    BranchTraceRecorder,
    ClassProfile,
    IllegalInstruction,
    MemoryError_,
    MicroBlazeConfig,
    MINIMAL_CONFIG,
    OnChipPeripheralBus,
    PAPER_CONFIG,
    PcCycleHistogram,
    SimplePeripheral,
    run_program,
)
from repro.microblaze.opb import OPB_BASE_ADDRESS, BusError


def run_asm(source: str, config=PAPER_CONFIG, listeners=()):
    return run_program(assemble(source), config, listeners=listeners)


# --------------------------------------------------------------------------- block RAM
class TestBlockRAM:
    def test_word_roundtrip(self):
        bram = BlockRAM(1024)
        bram.store(16, 0xDEADBEEF, 4)
        assert bram.load(16, 4) == 0xDEADBEEF

    def test_byte_and_half_access(self):
        bram = BlockRAM(64)
        bram.store(0, 0x1234, 2)
        assert bram.load(0, 2) == 0x1234
        assert bram.load(0, 1) == 0x34  # little endian

    def test_misaligned_access_rejected(self):
        bram = BlockRAM(64)
        with pytest.raises(MemoryError_):
            bram.load(2, 4)

    def test_out_of_range_rejected(self):
        bram = BlockRAM(64)
        with pytest.raises(MemoryError_):
            bram.store(64, 1, 4)

    def test_port_b_independent_counters(self):
        bram = BlockRAM(64)
        bram.store(0, 5, 4)
        bram.load_port_b(0, 4)
        assert bram.port_a_accesses == 1
        assert bram.port_b_accesses == 1


# --------------------------------------------------------------------------- OPB
class TestOpb:
    def test_decode_and_access(self):
        bus = OnChipPeripheralBus()
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS, num_registers=4)
        bus.attach(periph)
        bus.write(OPB_BASE_ADDRESS + 4, 99)
        assert bus.read(OPB_BASE_ADDRESS + 4) == 99
        assert bus.owns(OPB_BASE_ADDRESS)
        assert not bus.owns(OPB_BASE_ADDRESS + 0x1000)

    def test_unmapped_access_raises(self):
        bus = OnChipPeripheralBus()
        with pytest.raises(BusError):
            bus.read(OPB_BASE_ADDRESS)

    def test_overlapping_windows_rejected(self):
        bus = OnChipPeripheralBus()
        bus.attach(SimplePeripheral(base_address=OPB_BASE_ADDRESS,
                                    name="first"))
        with pytest.raises(BusError) as info:
            bus.attach(SimplePeripheral(base_address=OPB_BASE_ADDRESS + 4,
                                        name="second"))
        # The error names both peripherals and their address windows.
        message = str(info.value)
        assert "'first'" in message and "'second'" in message
        assert f"{OPB_BASE_ADDRESS:#010x}" in message
        # The rejected peripheral was not attached.
        assert len(bus.peripherals) == 1

    def test_partial_and_containing_overlaps_rejected(self):
        bus = OnChipPeripheralBus()
        bus.attach(SimplePeripheral(base_address=OPB_BASE_ADDRESS + 8,
                                    num_registers=4, name="mid"))
        # Overlap from below, exact duplicate, and a containing window.
        for base, registers in ((OPB_BASE_ADDRESS, 4),
                                (OPB_BASE_ADDRESS + 8, 4),
                                (OPB_BASE_ADDRESS, 16)):
            with pytest.raises(BusError):
                bus.attach(SimplePeripheral(base_address=base,
                                            num_registers=registers))
        # Adjacent (non-overlapping) windows attach fine.
        bus.attach(SimplePeripheral(base_address=OPB_BASE_ADDRESS + 24,
                                    num_registers=2, name="above"))
        assert len(bus.peripherals) == 2


# --------------------------------------------------------------------------- CPU semantics
class TestCpuSemantics:
    def test_arithmetic_and_logic(self):
        result = run_asm("""
            addi r5, r0, 21
            addi r6, r0, 2
            mul  r3, r5, r6        # 42
            xori r3, r3, 0xF       # 42 ^ 15 = 37
            bri 0
        """)
        assert result.return_value == (42 ^ 0xF)

    def test_rsub_order(self):
        result = run_asm("""
            addi r5, r0, 10
            addi r6, r0, 3
            rsub r3, r6, r5        # r5 - r6 = 7
            bri 0
        """)
        assert result.return_value == 7

    def test_barrel_shifts(self):
        result = run_asm("""
            addi r5, r0, 1
            bslli r5, r5, 12
            bsrli r3, r5, 4
            bri 0
        """)
        assert result.return_value == 1 << 8

    def test_arithmetic_shift_sign(self):
        result = run_asm("""
            addi r5, r0, -64
            bsrai r3, r5, 3
            bri 0
        """)
        assert result.return_value == (-8) & 0xFFFFFFFF

    def test_imm_prefix_builds_32bit_constant(self):
        result = run_asm("""
            li r3, 0xAAAAAAAA
            bri 0
        """)
        assert result.return_value == 0xAAAAAAAA

    def test_memory_store_load(self):
        result = run_asm("""
            addi r5, r0, 1234
            swi r5, r0, 64
            lwi r3, r0, 64
            bri 0
        """)
        assert result.return_value == 1234

    def test_byte_and_half_memory_ops(self):
        result = run_asm("""
            addi r5, r0, 0x1FF
            shi r5, r0, 32
            lhui r6, r0, 32
            sbi r6, r0, 40
            lbui r3, r0, 40
            bri 0
        """)
        assert result.return_value == 0xFF

    def test_conditional_branch_loop(self):
        result = run_asm("""
            addi r5, r0, 5
            addi r3, r0, 0
        loop:
            add r3, r3, r5
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """)
        assert result.return_value == 15

    def test_call_and_return(self):
        result = run_asm("""
            .entry main
        double:
            add r3, r5, r5
            rtsd r15, 8
            nop
        main:
            addi r5, r0, 17
            brlid r15, double
            nop
            bri 0
        """)
        assert result.return_value == 34

    def test_cmp_sign_semantics(self):
        result = run_asm("""
            addi r5, r0, 3
            addi r6, r0, 9
            cmp r3, r5, r6     # sign(r6 - r5) = +1
            bri 0
        """)
        assert result.return_value == 1

    def test_requires_multiplier(self):
        with pytest.raises(IllegalInstruction):
            run_asm("mul r3, r4, r5\nbri 0", config=MINIMAL_CONFIG)

    def test_requires_barrel_shifter(self):
        with pytest.raises(IllegalInstruction):
            run_asm("bslli r3, r4, 2\nbri 0", config=MINIMAL_CONFIG)


# --------------------------------------------------------------------------- timing
class TestTiming:
    def test_multiply_costs_three_cycles(self):
        base = run_asm("addi r3, r0, 1\nbri 0")
        with_mul = run_asm("addi r4, r0, 1\nmul r3, r4, r4\nbri 0")
        assert with_mul.cycles - base.cycles == PAPER_CONFIG.timings.multiply

    def test_taken_branch_costs_more_than_not_taken(self):
        taken = run_asm("addi r5, r0, 1\nbnei r5, skip\nnop\nskip:\nbri 0")
        not_taken = run_asm("addi r5, r0, 0\nbnei r5, skip\nnop\nskip:\nbri 0")
        assert taken.cycles == not_taken.cycles  # same path length here
        assert taken.stats.branches_taken == 2   # bnei + halt bri
        assert not_taken.stats.branches_taken == 1

    def test_opb_access_slower_than_bram(self):
        config = PAPER_CONFIG
        periph = SimplePeripheral(base_address=OPB_BASE_ADDRESS)
        opb_prog = assemble(f"""
            li r6, {OPB_BASE_ADDRESS}
            lwi r3, r6, 0
            bri 0
        """)
        bram_prog = assemble("""
            li r6, 128
            lwi r3, r6, 0
            bri 0
        """)
        opb = run_program(opb_prog, config, peripherals=[periph])
        bram = run_program(bram_prog, config)
        assert opb.cycles > bram.cycles

    def test_cpi_reasonable(self):
        result = run_asm("""
            addi r5, r0, 50
            addi r3, r0, 0
        loop:
            add r3, r3, r5
            addi r5, r5, -1
            bnei r5, loop
            bri 0
        """)
        assert 1.0 <= result.cpi <= 2.0


# --------------------------------------------------------------------------- tracing
class TestTracing:
    SOURCE = """
        addi r5, r0, 8
        addi r3, r0, 0
    loop:
        add r3, r3, r5
        addi r5, r5, -1
        bnei r5, loop
        bri 0
    """

    def test_class_profile_counts_everything(self):
        profile = ClassProfile()
        result = run_asm(self.SOURCE, listeners=[profile])
        assert profile.total_instructions == result.instructions
        assert profile.total_cycles == result.cycles

    def test_branch_recorder_sees_backward_branches(self):
        recorder = BranchTraceRecorder()
        run_asm(self.SOURCE, listeners=[recorder])
        backward = recorder.backward_taken_branches()
        assert len(backward) == 7  # loop iterates 8 times, last branch falls through

    def test_pc_histogram_accounts_all_cycles(self):
        histogram = PcCycleHistogram()
        result = run_asm(self.SOURCE, listeners=[histogram])
        assert histogram.total_cycles() == result.cycles
        assert histogram.cycles_in_range(0, 0x100) == result.cycles

    def test_config_describe_and_without(self):
        config = MicroBlazeConfig()
        reduced = config.without(HwUnit.BARREL_SHIFTER)
        assert config.use_barrel_shifter and not reduced.use_barrel_shifter
        assert "MicroBlaze" in reduced.describe()
