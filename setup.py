"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on machines whose
packaging toolchain predates PEP 660 editable wheels (e.g. offline
environments without the ``wheel`` package):

    pip install -e . --no-use-pep517
    # or
    python setup.py develop
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Warp processing for FPGA soft processor cores: a reproduction of "
        "Lysecky & Vahid, DATE 2005 — with a networked warp service "
        "(WARPNET gateway, remote workers, persistent CAD artifact store)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": [
            "repro-warp=repro.service.cli:main",
        ],
    },
)
