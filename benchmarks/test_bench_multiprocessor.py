"""Ablation — multi-processor warp system with a shared DPM (Figure 4).

The paper argues that a single dynamic partitioning module can serve
several MicroBlaze cores round-robin and that the per-processor WCLA
resources can share the configurable logic.  This benchmark times a
two-core warp run and checks that the shared-DPM schedule and the shared
fabric accounting behave as the paper describes.
"""

from __future__ import annotations

from repro.apps import build_benchmark
from repro.compiler import compile_source
from repro.microblaze import PAPER_CONFIG
from repro.warp import MultiProcessorWarpSystem


def _programs(names):
    programs = []
    for name in names:
        bench = build_benchmark(name, small=True)
        programs.append(compile_source(bench.source, name=name,
                                       config=PAPER_CONFIG).program)
    return programs


def test_multiprocessor_shared_dpm(benchmark):
    programs = _programs(["brev", "canrdr"])

    def run_two_cores():
        system = MultiProcessorWarpSystem(num_cores=2, num_dpm_modules=1)
        return system.run([p.copy() for p in programs])

    result = benchmark.pedantic(run_two_cores, rounds=2, iterations=1)

    # Both cores were partitioned and sped up.
    assert result.num_cores == 2
    assert all(core.partitioning.success for core in result.per_core)
    assert result.average_speedup > 1.0
    # Round-robin service: the second core's kernel waits for the first.
    assert result.schedule[1].dpm_start_seconds >= result.schedule[0].dpm_finish_seconds - 1e-12
    # A single shared fabric holds both kernels (the paper's sharing argument).
    assert result.fabric_fits_all_kernels
    # The single DPM is the serialisation point: its total service time is the
    # sum of the per-kernel tool times.
    per_kernel = [core.partitioning.dpm_seconds for core in result.per_core]
    assert result.total_dpm_service_seconds >= max(per_kernel)


def test_multiprocessor_scales_to_four_cores(benchmark):
    programs = _programs(["brev", "canrdr", "g3fax", "bitmnp"])

    def run_four_cores():
        system = MultiProcessorWarpSystem(num_cores=4, num_dpm_modules=1)
        return system.run([p.copy() for p in programs])

    result = benchmark.pedantic(run_four_cores, rounds=1, iterations=1)
    assert result.num_cores == 4
    assert result.average_speedup > 1.0
    # With one DPM the last core is served after everyone before it.
    finishes = [item.dpm_finish_seconds for item in result.schedule]
    assert finishes == sorted(finishes)
