"""Shared fixtures for the benchmark harness.

The expensive artifacts — the full-size Figure 6 / Figure 7 evaluation and
the Section 2 study — are computed once per session and shared by all
benchmark modules; the individual benchmarks then time representative
stages of the flow and assert the paper-shape properties on the cached
full-size results.
"""

from __future__ import annotations

import pytest

from repro.apps import build_suite
from repro.compiler import compile_source
from repro.eval import run_configurability_study, run_evaluation
from repro.microblaze import PAPER_CONFIG


@pytest.fixture(scope="session")
def full_evaluation():
    """The full-size six-benchmark evaluation behind Figures 6 and 7."""
    return run_evaluation()


@pytest.fixture(scope="session")
def section2_study():
    """The full-size Section 2 configurability study."""
    return run_configurability_study()


@pytest.fixture(scope="session")
def full_benchmarks():
    return {bench.name: bench for bench in build_suite()}


@pytest.fixture(scope="session")
def compiled_programs(full_benchmarks):
    return {name: compile_source(bench.source, name=name, config=PAPER_CONFIG).program
            for name, bench in full_benchmarks.items()}
