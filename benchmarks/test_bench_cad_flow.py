"""CAD-flow benchmark: per-stage wall times, staged vs bundle caching.

Profiles each suite benchmark once, then drives the dynamic partitioning
module directly (no simulation in the timed sections) to measure:

* **per-stage host wall time** of a cold flow over the six kernels —
  where the on-chip CAD time actually goes on the host;
* **second-pass stage-level hit rate** — an identical second pass over
  the same kernels must serve >= 90% of its cacheable stage lookups from
  the cache (in practice 100%, via the whole-bundle fast path);
* **staged caching vs cold runs on a routing-only sweep** — changing only
  the fabric's channel width invalidates routing and implementation but
  not synthesis or placement, so the staged flow must beat a fully cold
  flow at the swept parameters.

All numbers are appended to ``BENCH_cad.json`` at the repository root so
future PRs have a recorded CAD-flow trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path

from repro.apps import build_suite
from repro.cad import (
    SOURCE_BUNDLE,
    SOURCE_HIT,
    SOURCE_MISS,
    SOURCE_NEGATIVE,
    CadArtifactCache,
)
from repro.compiler import compile_source
from repro.fabric import DEFAULT_WCLA
from repro.microblaze import PAPER_CONFIG, run_program
from repro.partition import DynamicPartitioningModule
from repro.profiler import OnChipProfiler

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cad.json"

#: Acceptance floor: cacheable-stage hit rate of the second identical pass.
MIN_SECOND_PASS_STAGE_HIT_RATE = 0.90

#: Timed repetitions per configuration (best-of to damp scheduler noise;
#: the staged flow skips synthesis+placement — the bulk of the cold wall
#: time — so the comparison below holds with a ~6x margin).
REPEATS = 5

STAGE_HIT_SOURCES = (SOURCE_HIT, SOURCE_BUNDLE, SOURCE_NEGATIVE)


def _profiled_kernels():
    """(name, program, region) for every suite benchmark (small inputs:
    the loop bodies — and therefore the CAD problems — are identical to
    the full-size ones)."""
    out = []
    for bench in build_suite(small=True):
        program = compile_source(bench.source, name=bench.name,
                                 config=PAPER_CONFIG).program
        profiler = OnChipProfiler()
        run_program(program, PAPER_CONFIG, listeners=[profiler])
        out.append((bench.name, program, profiler.most_critical_region()))
    return out


def _run_pass(dpm, kernels):
    """Partition every kernel once; returns (outcomes, wall_seconds)."""
    outcomes = []
    start = time.perf_counter()
    for _, program, region in kernels:
        outcomes.append(dpm.partition(program.copy(), region))
    return outcomes, time.perf_counter() - start


def _stage_hit_rate(outcomes):
    hits = misses = 0
    for outcome in outcomes:
        for record in outcome.stage_records:
            if record.source in STAGE_HIT_SOURCES:
                hits += 1
            elif record.source == SOURCE_MISS:
                misses += 1
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def test_cad_flow_staged_caching_and_stage_times():
    kernels = _profiled_kernels()

    # ------------------------------------------------------------- cold pass
    cache = CadArtifactCache()
    dpm = DynamicPartitioningModule(artifact_cache=cache)
    cold_outcomes, cold_seconds = _run_pass(dpm, kernels)
    assert all(outcome.success for outcome in cold_outcomes)

    stage_wall_ms = {}
    for outcome in cold_outcomes:
        for record in outcome.stage_records:
            stage_wall_ms[record.stage] = stage_wall_ms.get(record.stage, 0.0) \
                + record.wall_seconds * 1e3

    # ------------------------------------------------- identical second pass
    warm_outcomes, warm_seconds = _run_pass(dpm, kernels)
    warm_hit_rate = _stage_hit_rate(warm_outcomes)
    assert warm_hit_rate >= MIN_SECOND_PASS_STAGE_HIT_RATE, \
        f"second-pass stage hit rate {warm_hit_rate:.2f}"
    assert all(outcome.cad_cache_hit for outcome in warm_outcomes)

    # ------------------------------------------------- routing-only sweep
    # Changing only the channel width leaves the synthesis and placement
    # stage keys intact: the staged flow reroutes on top of cached
    # placements, a cold flow redoes everything.
    narrow = dataclasses.replace(
        DEFAULT_WCLA,
        fabric=dataclasses.replace(DEFAULT_WCLA.fabric, channel_width=6))

    staged_seconds = []
    cold_swept_seconds = []
    for _ in range(REPEATS):
        staged_cache = CadArtifactCache()
        _run_pass(DynamicPartitioningModule(artifact_cache=staged_cache),
                  kernels)  # warm synthesis/placement at the base parameters
        staged_dpm = DynamicPartitioningModule(wcla=narrow,
                                               artifact_cache=staged_cache)
        swept_outcomes, seconds = _run_pass(staged_dpm, kernels)
        staged_seconds.append(seconds)

        cold_dpm = DynamicPartitioningModule(wcla=narrow,
                                             artifact_cache=CadArtifactCache())
        cold_swept, seconds = _run_pass(cold_dpm, kernels)
        cold_swept_seconds.append(seconds)

    # The staged sweep reused synthesis+placement for every kernel...
    for outcome in swept_outcomes:
        sources = {record.stage: record.source
                   for record in outcome.stage_records}
        assert sources["synthesis"] == "hit", sources
        assert sources["place"] == "hit", sources
        assert sources["route"] == "miss", sources
    # ...and produced the same modelled on-chip times as the cold flow.
    for staged, cold in zip(swept_outcomes, cold_swept):
        assert staged.dpm_seconds == cold.dpm_seconds

    staged_best = min(staged_seconds)
    cold_best = min(cold_swept_seconds)

    record = {
        "kernels": len(kernels),
        "cold_pass_seconds": round(cold_seconds, 4),
        "warm_pass_seconds": round(warm_seconds, 4),
        "warm_stage_hit_rate": round(warm_hit_rate, 4),
        "stage_wall_ms_cold": {stage: round(ms, 3)
                               for stage, ms in stage_wall_ms.items()},
        "routing_only_sweep": {
            "staged_seconds_best": round(staged_best, 4),
            "cold_seconds_best": round(cold_best, 4),
            "staged_speedup": round(cold_best / staged_best, 2)
            if staged_best > 0 else 0.0,
        },
        "thresholds": {
            "second_pass_stage_hit_rate": MIN_SECOND_PASS_STAGE_HIT_RATE,
            "staged_beats_cold_on_routing_only_sweep": True,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text()).get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(record)
    BENCH_PATH.write_text(json.dumps({"latest": record,
                                      "history": history[-20:]},
                                     indent=2) + "\n")

    # ---------------------------------------------------------- the floors
    assert staged_best < cold_best, record
