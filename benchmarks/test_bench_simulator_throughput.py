"""Simulator throughput trajectory — interp vs threaded vs jit vs region.

Measures, at full benchmark size:

* **cold** simulated instructions per second over the six-application
  suite on the reference interpreter and the threaded-code engine (the
  PR-1 metric, kept for trajectory continuity: fresh system per run,
  translation included), plus the translation-cost breakdown of the two
  source-generating engines (``codegen_stats()``: compiles, cache hits
  and ``compile_seconds`` for jit and region separately);
* **steady-state** throughput of the block engines — threaded, the
  source-generating jit and the region-fusing engine — with warm
  translation caches (one warm-up run, then timed repeats through the
  same system).  This is the service's operating model: worker processes
  keep systems and the process-wide code cache warm across jobs, so
  steady state is what repeated sweeps actually pay;
* the wall time of the full ``run_evaluation()`` pipeline (Figures 6 and
  7) on all four engines, asserting the checksums along the way;
* differential fuzzing campaign throughput (``repro.fuzz``): generated
  programs per second and fuzzed instructions per second with every
  registered engine cross-checked per program — the fleet's programs/s
  budget planner, asserted divergence-free along the way.

Bit-exactness of the fast engines is asserted before any speed is
compared.  Results are appended to ``BENCH_simulator.json`` at the
repository root (the previous record is preserved under ``history``), and
the acceptance floors — at least 5x cold throughput for the threaded
engine (ISSUE 1), at least 1.5x steady-state suite throughput of jit over
threaded (ISSUE 5), and at least 1.8x steady-state suite throughput of
region over jit (ISSUE 8) — are asserted here so a regression cannot
land silently.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.apps import build_suite
from repro.compiler import compile_source_cached
from repro.eval import run_evaluation
from repro.fuzz import run_campaign
from repro.microblaze import PAPER_CONFIG, MicroBlazeSystem, run_program
from repro.microblaze.engines.jit import codegen_stats, reset_codegen_stats

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Acceptance thresholds of the threaded-code engine work (ISSUE 1).
MIN_THROUGHPUT_SPEEDUP = 5.0
MIN_EVALUATION_SPEEDUP = 3.0
#: Acceptance threshold of the source-generating jit engine (ISSUE 5):
#: steady-state suite throughput over the threaded engine.
MIN_JIT_OVER_THREADED = 1.5
#: Acceptance threshold of the region-fusing engine (ISSUE 8):
#: steady-state suite throughput over the jit engine.  Measured at
#: 2.2x-2.3x on the reference container; the floor leaves noise headroom.
MIN_REGION_OVER_JIT = 1.8

#: Seeds per fuzz-campaign throughput measurement (every program runs on
#: all four registered engines, so the per-seed cost is a fleet-width
#: cross-check, not a single simulation).
FUZZ_CAMPAIGN_SEEDS = 40

#: Steady-state timed repeats per benchmark (after one warm-up run).
#: The per-engine time is the *minimum* over the repeats, and the
#: engines' repeats are interleaved, so scheduler noise and frequency
#: drift from the surrounding benchmark session cannot bias the ratio.
STEADY_REPEATS = 7


def _suite_programs():
    return [(benchmark.name,
             compile_source_cached(benchmark.source, name=benchmark.name,
                                   config=PAPER_CONFIG).program)
            for benchmark in build_suite()]


def _measure_cold(programs, engine):
    """Total instructions and wall seconds, fresh system per run."""
    instructions = 0
    seconds = 0.0
    results = {}
    for name, program in programs:
        start = time.perf_counter()
        result = run_program(program, PAPER_CONFIG, engine=engine)
        seconds += time.perf_counter() - start
        instructions += result.instructions
        results[name] = result
    return instructions, seconds, results


def _measure_steady(programs, engines, repeats=STEADY_REPEATS):
    """Steady-state: per program and engine, one warm-up run through a
    fresh system, then ``repeats`` timed re-runs through the *same*
    system (translation caches stay warm, exactly like a warm service
    worker).  Engines are timed in interleaved rounds and the per-program
    cost is the minimum over the rounds — the least-interfered estimate
    of each engine's true steady-state cost.

    Returns ``{engine: (total_instructions, best_seconds)}``.
    """
    totals = {engine: [0, 0.0] for engine in engines}
    for name, program in programs:
        systems = {}
        reference = {}
        pristine = {}
        for engine in engines:
            system = MicroBlazeSystem(config=PAPER_CONFIG, engine=engine)
            system.load(program)
            # The canonical pre-run data image: repeats restore it in
            # place (BRAM identity is stable, so the warm translations
            # survive; a full load() would invalidate them).
            pristine[engine] = bytes(system.data_bram.storage)
            result = system.run()  # warm-up: compile superblocks
            systems[engine] = system
            reference[engine] = (result.stats.instructions,
                                 result.return_value)
        times = {engine: [] for engine in engines}
        instructions = {}
        for _ in range(repeats):
            for engine in engines:
                system = systems[engine]
                system.data_bram.storage[:] = pristine[engine]
                system.cpu.reset(entry_point=program.entry_point,
                                 stack_pointer=system.data_bram.size - 4)
                start = time.perf_counter()
                stats = system.cpu.run()
                times[engine].append(time.perf_counter() - start)
                # Every timed repeat must be the canonical workload, not
                # a re-run over mutated data memory.
                assert (stats.instructions, system.cpu.read_register(3)) \
                    == reference[engine], (name, engine)
                instructions[engine] = stats.instructions
        for engine in engines:
            totals[engine][0] += instructions[engine]
            totals[engine][1] += min(times[engine])
    return {engine: tuple(values) for engine, values in totals.items()}


def test_simulator_throughput_and_evaluation_walltime():
    programs = _suite_programs()

    reset_codegen_stats()
    interp_instr, interp_seconds, interp_results = \
        _measure_cold(programs, "interp")
    threaded_instr, threaded_seconds, threaded_results = \
        _measure_cold(programs, "threaded")
    jit_instr, jit_seconds, jit_results = _measure_cold(programs, "jit")
    region_instr, region_seconds, region_results = \
        _measure_cold(programs, "region")
    # Translation-cost breakdown of the cold suite runs: the region
    # engine pays block compiles (its cold dispatch) *plus* region
    # fusion; both are reported per engine label.
    codegen = codegen_stats()

    # The engines must agree bit-for-bit before their speeds are compared.
    assert threaded_instr == interp_instr == jit_instr == region_instr
    for name, _ in programs:
        for results in (threaded_results, jit_results, region_results):
            assert results[name].stats == interp_results[name].stats, name
            assert results[name].return_value \
                == interp_results[name].return_value, name

    interp_ips = interp_instr / interp_seconds
    threaded_ips = threaded_instr / threaded_seconds
    jit_cold_ips = jit_instr / jit_seconds
    region_cold_ips = region_instr / region_seconds
    throughput_speedup = threaded_ips / interp_ips

    # Steady state: the jit and region engines' acceptance metric (warm
    # translation caches, the service's operating model).
    steady = _measure_steady(programs, ("threaded", "jit", "region"))
    steady_threaded_instr, steady_threaded_seconds = steady["threaded"]
    steady_jit_instr, steady_jit_seconds = steady["jit"]
    steady_region_instr, steady_region_seconds = steady["region"]
    assert steady_threaded_instr == steady_jit_instr == steady_region_instr
    steady_threaded_ips = steady_threaded_instr / steady_threaded_seconds
    steady_jit_ips = steady_jit_instr / steady_jit_seconds
    steady_region_ips = steady_region_instr / steady_region_seconds
    jit_speedup = steady_jit_ips / steady_threaded_ips
    region_speedup = steady_region_ips / steady_jit_ips

    # Evaluation pipeline wall time (compile cache warmed by all paths
    # equally via the shared compile_source_cached above).
    evaluation = {}
    for engine in ("interp", "threaded", "jit", "region"):
        start = time.perf_counter()
        suite = run_evaluation(engine=engine)
        evaluation[engine] = time.perf_counter() - start
        assert suite.all_checksums_match, engine
    evaluation_speedup = evaluation["interp"] / evaluation["threaded"]

    # Differential fuzzing campaign throughput: one mixed-profile seed
    # range, every registered engine cross-checked per program.  The
    # campaign must stay divergence-free before its speed is recorded.
    fuzz_report = run_campaign(FUZZ_CAMPAIGN_SEEDS, profile="mixed")
    assert fuzz_report.unexplained_divergences == 0, fuzz_report.divergences

    record = {
        "suite": {
            "instructions": threaded_instr,
            "interp_seconds": round(interp_seconds, 4),
            "threaded_seconds": round(threaded_seconds, 4),
            "jit_seconds": round(jit_seconds, 4),
            "region_seconds": round(region_seconds, 4),
            "interp_kips": round(interp_ips / 1e3, 1),
            "threaded_kips": round(threaded_ips / 1e3, 1),
            "jit_kips": round(jit_cold_ips / 1e3, 1),
            "region_kips": round(region_cold_ips / 1e3, 1),
            "throughput_speedup": round(throughput_speedup, 2),
        },
        "compile_seconds": {
            engine: {
                "compiles": int(bucket["compiles"]),
                "cache_hits": int(bucket["cache_hits"]),
                "compile_seconds": round(bucket["compile_seconds"], 4),
                "regions": int(bucket["regions"]),
                "region_blocks": int(bucket["region_blocks"]),
            }
            for engine, bucket in sorted(codegen.items())
        },
        "steady_state": {
            "repeats": STEADY_REPEATS,
            "threaded_kips": round(steady_threaded_ips / 1e3, 1),
            "jit_kips": round(steady_jit_ips / 1e3, 1),
            "region_kips": round(steady_region_ips / 1e3, 1),
            "jit_over_threaded": round(jit_speedup, 2),
            "region_over_jit": round(region_speedup, 2),
        },
        "evaluation": {
            "interp_seconds": round(evaluation["interp"], 4),
            "threaded_seconds": round(evaluation["threaded"], 4),
            "jit_seconds": round(evaluation["jit"], 4),
            "region_seconds": round(evaluation["region"], 4),
            "speedup": round(evaluation_speedup, 2),
        },
        "fuzz_campaign": {
            "profile": fuzz_report.profile,
            "programs": fuzz_report.programs,
            "engines": list(fuzz_report.engines),
            "instructions": fuzz_report.instructions,
            "wall_seconds": round(fuzz_report.wall_seconds, 4),
            "programs_per_second":
                round(fuzz_report.programs_per_second, 2),
            "instructions_per_second":
                round(fuzz_report.instructions_per_second, 1),
            "unexplained_divergences":
                fuzz_report.unexplained_divergences,
        },
        "per_benchmark": {
            name: {
                "instructions": threaded_results[name].instructions,
                "cycles": threaded_results[name].cycles,
            }
            for name, _ in programs
        },
        "thresholds": {
            "throughput_speedup": MIN_THROUGHPUT_SPEEDUP,
            "evaluation_speedup": MIN_EVALUATION_SPEEDUP,
            "jit_over_threaded": MIN_JIT_OVER_THREADED,
            "region_over_jit": MIN_REGION_OVER_JIT,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    # Append to the trajectory, same shape as the other BENCH files
    # (latest + oldest-first bounded history).
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text()).get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(record)
    BENCH_PATH.write_text(json.dumps({"latest": record,
                                      "history": history[-20:]},
                                     indent=2) + "\n")

    assert throughput_speedup >= MIN_THROUGHPUT_SPEEDUP, record["suite"]
    assert evaluation_speedup >= MIN_EVALUATION_SPEEDUP, record["evaluation"]
    assert jit_speedup >= MIN_JIT_OVER_THREADED, record["steady_state"]
    assert region_speedup >= MIN_REGION_OVER_JIT, record["steady_state"]
    # The breakdown must actually have seen both source-generating
    # engines translate, and region fusion must have fired.
    assert codegen["jit"]["compiles"] + codegen["jit"]["cache_hits"] > 0
    assert codegen["region"]["regions"] > 0
    assert fuzz_report.programs == FUZZ_CAMPAIGN_SEEDS
    assert fuzz_report.programs_per_second > 0


@pytest.mark.parametrize("engine", ["threaded", "jit", "region"])
def test_engine_throughput_floor(benchmark, engine):
    """Absolute per-run throughput of both fast engines (trend metric).

    Both non-reference engines sit in the benchmark matrix so a
    regression in either shows up in the recorded trend, not just in the
    relative floors above.
    """
    name, program = _suite_programs()[0]  # brev

    result = benchmark(run_program, program, PAPER_CONFIG, engine=engine)
    assert result.stats.halted
