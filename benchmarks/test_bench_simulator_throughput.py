"""Simulator throughput trajectory — threaded-code engine vs interpreter.

Measures, at full benchmark size:

* simulated instructions per second over the six-application suite on the
  reference interpreter (the seed engine) and the threaded-code engine,
  asserting the bit-exactness of the faster engine along the way;
* the wall time of the full ``run_evaluation()`` pipeline (Figures 6 and
  7) on both engines.

The numbers are written to ``BENCH_simulator.json`` at the repository
root so future PRs have a recorded performance trajectory, and the
acceptance thresholds of the threaded-engine work — at least 5x
simulated-instruction throughput and at least 3x lower evaluation wall
time — are asserted here so a regression cannot land silently.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.apps import build_suite
from repro.compiler import compile_source_cached
from repro.eval import run_evaluation
from repro.microblaze import PAPER_CONFIG, run_program

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Acceptance thresholds of the threaded-code engine work (ISSUE 1).
MIN_THROUGHPUT_SPEEDUP = 5.0
MIN_EVALUATION_SPEEDUP = 3.0


def _suite_programs():
    return [(benchmark.name,
             compile_source_cached(benchmark.source, name=benchmark.name,
                                   config=PAPER_CONFIG).program)
            for benchmark in build_suite()]


def _measure_engine(programs, engine):
    """Total instructions and wall seconds to run the suite on ``engine``."""
    instructions = 0
    seconds = 0.0
    results = {}
    for name, program in programs:
        start = time.perf_counter()
        result = run_program(program, PAPER_CONFIG, engine=engine)
        seconds += time.perf_counter() - start
        instructions += result.instructions
        results[name] = result
    return instructions, seconds, results


def test_simulator_throughput_and_evaluation_walltime():
    programs = _suite_programs()

    interp_instr, interp_seconds, interp_results = \
        _measure_engine(programs, "interp")
    threaded_instr, threaded_seconds, threaded_results = \
        _measure_engine(programs, "threaded")

    # The engines must agree bit-for-bit before their speeds are compared.
    assert threaded_instr == interp_instr
    for name, _ in programs:
        assert threaded_results[name].stats == interp_results[name].stats, name
        assert threaded_results[name].return_value \
            == interp_results[name].return_value, name

    interp_ips = interp_instr / interp_seconds
    threaded_ips = threaded_instr / threaded_seconds
    throughput_speedup = threaded_ips / interp_ips

    # Evaluation pipeline wall time (compile cache warmed by both paths
    # equally via the shared compile_source_cached above).
    start = time.perf_counter()
    interp_suite = run_evaluation(engine="interp")
    interp_eval_seconds = time.perf_counter() - start
    start = time.perf_counter()
    threaded_suite = run_evaluation(engine="threaded")
    threaded_eval_seconds = time.perf_counter() - start
    assert interp_suite.all_checksums_match
    assert threaded_suite.all_checksums_match
    evaluation_speedup = interp_eval_seconds / threaded_eval_seconds

    record = {
        "suite": {
            "instructions": threaded_instr,
            "interp_seconds": round(interp_seconds, 4),
            "threaded_seconds": round(threaded_seconds, 4),
            "interp_kips": round(interp_ips / 1e3, 1),
            "threaded_kips": round(threaded_ips / 1e3, 1),
            "throughput_speedup": round(throughput_speedup, 2),
        },
        "evaluation": {
            "interp_seconds": round(interp_eval_seconds, 4),
            "threaded_seconds": round(threaded_eval_seconds, 4),
            "speedup": round(evaluation_speedup, 2),
        },
        "per_benchmark": {
            name: {
                "instructions": threaded_results[name].instructions,
                "cycles": threaded_results[name].cycles,
            }
            for name, _ in programs
        },
        "thresholds": {
            "throughput_speedup": MIN_THROUGHPUT_SPEEDUP,
            "evaluation_speedup": MIN_EVALUATION_SPEEDUP,
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert throughput_speedup >= MIN_THROUGHPUT_SPEEDUP, record["suite"]
    assert evaluation_speedup >= MIN_EVALUATION_SPEEDUP, record["evaluation"]


def test_threaded_engine_throughput_floor(benchmark):
    """Absolute per-run throughput of the threaded engine (trend metric)."""
    name, program = _suite_programs()[0]  # brev

    result = benchmark(run_program, program, PAPER_CONFIG, engine="threaded")
    assert result.stats.halted
