"""Section 2 — MicroBlaze configurability study.

Regenerates the Section 2 data points: ``brev`` slows down when the barrel
shifter and multiplier are removed (2.1x in the paper) and ``matmul`` slows
down when the multiplier is removed (1.3x in the paper).  The timed portion
is one compile+simulate measurement; the assertions run on the cached
full-size study.
"""

from __future__ import annotations

from repro.eval import measure_case
from repro.isa.instructions import HwUnit


def test_section2_configurability(benchmark, section2_study):
    """Time one configurability measurement; assert the Section 2 shape."""
    entry = benchmark.pedantic(
        lambda: measure_case("brev", (HwUnit.BARREL_SHIFTER, HwUnit.MULTIPLIER),
                             2.1, small=True),
        rounds=3, iterations=1,
    )
    assert entry.slowdown > 1.0

    study = section2_study
    brev = study.entry("brev")
    matmul = study.entry("matmul")
    # Both configurations pay a clear penalty, in the direction and rough
    # magnitude the paper reports (2.1x and 1.3x).
    assert 1.5 <= brev.slowdown <= 3.0
    assert 1.2 <= matmul.slowdown <= 3.0
    # Removing units never changes functional behaviour (checked at build
    # time inside measure_case) and always costs cycles.
    assert brev.reduced_cycles > brev.baseline_cycles
    assert matmul.reduced_cycles > matmul.baseline_cycles
    assert "brev" in study.table()
