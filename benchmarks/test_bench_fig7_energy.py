"""Figure 7 — normalized energy of the warp processor and the ARM cores.

Regenerates the normalized-energy series of Figure 7 and checks the paper's
qualitative claims: the plain MicroBlaze is the most energy-hungry platform,
the ARM11 the second most, warp processing cuts the MicroBlaze's energy by
roughly half or more (57 % in the paper, 94 % for ``brev``), and the warp
processor needs less energy than the ARM10 and ARM11.
"""

from __future__ import annotations

import pytest

from repro.eval.figures import PLATFORM_ORDER
from repro.power import microblaze_energy, warp_energy


def test_fig7_energy_accounting(benchmark, full_evaluation):
    """Time the Figure-5 energy computation; assert Figure 7's shape."""
    suite = full_evaluation
    sample = suite.evaluations[0].warp

    def evaluate_energy():
        baseline = microblaze_energy(sample.software_seconds, 85.0)
        warp = warp_energy(sample.microblaze_seconds, sample.hw_seconds, 85.0,
                           wcla_luts=300, uses_mac=True)
        return warp.normalized_to(baseline)

    normalized_sample = benchmark(evaluate_energy)
    assert 0.0 < normalized_sample < 1.0

    # ---- Figure 7 shape assertions on the full-size evaluation -------------
    for item in suite.evaluations:
        normalized = item.normalized_energy()
        assert normalized["MicroBlaze"] == pytest.approx(1.0)
        # MicroBlaze is the most energy hungry platform on every benchmark.
        assert all(normalized[name] <= 1.0 + 1e-9 for name in PLATFORM_ORDER)

    averages = {name: sum(item.normalized_energy()[name]
                          for item in suite.evaluations) / len(suite.evaluations)
                for name in PLATFORM_ORDER}
    # ARM11 is the second most energy hungry platform on average (paper: the
    # MicroBlaze needs 48% more energy than the ARM11).
    assert averages["ARM11"] == max(v for k, v in averages.items() if k != "MicroBlaze")
    assert 0.2 <= suite.microblaze_vs_arm11_energy() <= 1.2

    # Warp processing reduces the MicroBlaze's energy substantially (57% in
    # the paper, 94% for brev).
    reduction = suite.average_warp_energy_reduction()
    assert 0.40 <= reduction <= 0.85
    brev = next(item for item in suite.evaluations if item.benchmark.name == "brev")
    assert brev.normalized_energy()["MicroBlaze (Warp)"] < 0.15

    # The warp processor needs less energy than the ARM10 and the ARM11.
    assert averages["MicroBlaze (Warp)"] < averages["ARM10"]
    assert averages["MicroBlaze (Warp)"] < averages["ARM11"]
    assert suite.warp_energy_saving_vs_arm10() > 0.0
    assert suite.arm11_energy_overhead_vs_warp() > 0.0


def test_fig7_table_rendering(benchmark, full_evaluation):
    table = benchmark(full_evaluation.figure7_table)
    assert "Average:" in table
