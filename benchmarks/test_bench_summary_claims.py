"""Section 4 aggregate claims derived from Figures 6 and 7.

The paper's headline numbers: average warp speedup of 5.8x (3.6x excluding
``brev``), average energy reduction of 57% (49% excluding ``brev``), the
MicroBlaze needing 48% more energy than the ARM11, the ARM11 being 2.6x
faster than the warp processor but using 80% more energy, and the warp
processor being 1.3x faster than the ARM10 with 26% less energy.
"""

from __future__ import annotations


def test_summary_claims(benchmark, full_evaluation):
    suite = full_evaluation
    claims = benchmark(suite.claims_summary)
    assert "average warp speedup" in claims

    # Who wins, and by roughly what factor (the reproduction target).
    assert 3.0 <= suite.average_warp_speedup() <= 10.0            # paper: 5.8x
    assert 2.0 <= suite.average_warp_speedup(exclude=("brev",)) <= 6.0   # 3.6x
    assert 0.40 <= suite.average_warp_energy_reduction() <= 0.85  # paper: 57%
    assert 0.35 <= suite.average_warp_energy_reduction(exclude=("brev",)) <= 0.85  # 49%
    assert suite.microblaze_vs_arm11_energy() > 0.2               # paper: +48%
    assert 1.5 <= suite.arm11_speed_advantage_over_warp() <= 4.0  # paper: 2.6x
    assert suite.arm11_energy_overhead_vs_warp() > 0.5            # paper: +80%
    assert 1.0 <= suite.warp_speed_advantage_over_arm10() <= 2.0  # paper: 1.3x
    assert 0.1 <= suite.warp_energy_saving_vs_arm10() <= 0.6      # paper: 26%
    assert suite.all_checksums_match
