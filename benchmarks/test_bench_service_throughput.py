"""Warp-service throughput: pooled vs serial sweeps, CAD-cache reuse.

Runs the built-in full-size suite sweep (six benchmarks × the paper
configuration × both execution engines = 12 jobs) through the warp
service twice per mode:

* **pooled, cold → warm** — the sweep on a content-affinity worker pool,
  then the identical sweep again through the same (living) service, whose
  per-worker CAD caches are now warm;
* **serial, cold → warm** — the same pair on the in-process path.

Asserted floors (ISSUE 2 acceptance):

* the second identical sweep reaches a >= 90% artifact-cache hit rate and
  skips synthesis/place/route for every cached kernel (every partitioned
  job reports ``cad_cache_hit`` with zero misses);
* on a machine with at least two CPUs the pooled cold sweep beats the
  serial cold sweep's wall time;
* pooled and serial sweeps produce numerically identical results.

All numbers are appended to ``BENCH_service.json`` at the repository root
so future PRs have a recorded service-throughput trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.compiler import clear_compile_cache
from repro.microblaze import PAPER_CONFIG
from repro.service import WarpService, process_artifact_cache, suite_sweep_jobs

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Acceptance floor: hit rate of the second identical sweep.
MIN_SECOND_SWEEP_HIT_RATE = 0.90


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX fallback
        return os.cpu_count() or 1


def _sweep_jobs():
    return suite_sweep_jobs(configs=[("paper", PAPER_CONFIG)],
                            engines=("threaded", "interp"))


def _timed_run(service, jobs):
    start = time.perf_counter()
    report = service.run(jobs)
    return report, time.perf_counter() - start


def _assert_warm_sweep_served_from_cache(report):
    assert report.cache_hit_rate >= MIN_SECOND_SWEEP_HIT_RATE, \
        f"second sweep hit rate {report.cache_hit_rate:.2f}"
    for result in report.results:
        assert result.ok, result.error
        if result.partitioned:
            # Synthesis/place/route were skipped: the CAD artifacts came
            # out of the content-addressed cache without a single miss.
            assert result.cad_cache_hit, result.job_name
            assert result.cache_misses == 0, result.job_name


def test_service_sweep_throughput_and_cache_reuse():
    cpus = _cpu_count()
    jobs = _sweep_jobs()
    workers = max(2, min(4, cpus))

    # ---------------------------------------------------------------- pooled
    with WarpService(workers=workers) as pooled_service:
        pooled_cold, pooled_cold_seconds = _timed_run(pooled_service, jobs)
        pooled_warm, pooled_warm_seconds = _timed_run(pooled_service, jobs)
    assert pooled_cold.num_failed == 0
    _assert_warm_sweep_served_from_cache(pooled_warm)

    # ---------------------------------------------------------------- serial
    # Cold caches for a fair serial baseline (the pooled run warmed only
    # its worker processes, but clear defensively).
    process_artifact_cache().clear()
    clear_compile_cache()
    serial_service = WarpService(workers=0)
    serial_cold, serial_cold_seconds = _timed_run(serial_service, jobs)
    serial_warm, serial_warm_seconds = _timed_run(serial_service, jobs)
    assert serial_cold.num_failed == 0
    _assert_warm_sweep_served_from_cache(serial_warm)

    # ------------------------------------------------------------ equivalence
    for a, b in zip(serial_cold.results, pooled_cold.results):
        assert a.job_name == b.job_name
        assert a.speedup == b.speedup, a.job_name
        assert a.normalized_warp_energy == b.normalized_warp_energy, a.job_name
        assert a.checksum_ok and b.checksum_ok

    record = {
        "jobs": len(jobs),
        "cpus": cpus,
        "workers": workers,
        "serial": {
            "cold_seconds": round(serial_cold_seconds, 4),
            "warm_seconds": round(serial_warm_seconds, 4),
            "warm_hit_rate": round(serial_warm.cache_hit_rate, 4),
        },
        "pooled": {
            "cold_seconds": round(pooled_cold_seconds, 4),
            "warm_seconds": round(pooled_warm_seconds, 4),
            "warm_hit_rate": round(pooled_warm.cache_hit_rate, 4),
        },
        "pool_speedup": round(serial_cold_seconds / pooled_cold_seconds, 2),
        "thresholds": {
            "second_sweep_hit_rate": MIN_SECOND_SWEEP_HIT_RATE,
            "pooled_faster_than_serial": "only asserted on >= 2 CPUs",
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    history = []
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
            history = previous.get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(record)
    BENCH_PATH.write_text(json.dumps({"latest": record,
                                      "history": history[-20:]},
                                     indent=2) + "\n")

    # -------------------------------------------------------------- the floor
    if cpus >= 2:
        assert pooled_cold_seconds < serial_cold_seconds, record


#: Generous ceiling on injection-gate visits per job: one worker gate,
#: every CAD stage, a store load + publish per stage, and a few wire
#: frames.  The real warm-path count is far lower (cache hits skip the
#: stage and store gates entirely).
GATES_PER_JOB = 100

#: Acceptance: the disabled fault plane costs < 2% of a warm job.
MAX_DISABLED_CHAOS_OVERHEAD = 0.02


def test_disabled_fault_plane_overhead_is_negligible():
    """Chaos-plane guard: with no fault plan installed, every injection
    site costs one module attribute load and an ``is`` check.

    Wall-clock A/B sweeps cannot resolve a 2% bound on this host (the
    scheduler noise between two identical warm sweeps exceeds it), so
    the guard bounds the overhead analytically from two measurements:
    the per-visit cost of a disabled gate (measured over enough visits
    to defeat timer noise) times a generous per-job gate-count ceiling,
    as a fraction of the best measured warm job.  The margin is ~two
    orders of magnitude, so this stays stable on a loaded CI box.
    """
    from repro import chaos

    assert chaos.ACTIVE_PLAN is None  # measuring the *disabled* plane
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        # The exact production pattern at every injection site.
        if chaos.ACTIVE_PLAN is not None:  # pragma: no cover
            chaos.fire(chaos.SITE_WORKER_JOB)
    gate_seconds = (time.perf_counter() - start) / iterations

    jobs = suite_sweep_jobs(benchmarks=["brev", "matmul", "idct"],
                            small=True)
    service = WarpService(workers=0)
    service.run(jobs)  # warm every cache first
    best_sweep = min(_timed_run(service, jobs)[1] for _ in range(5))
    job_seconds = best_sweep / len(jobs)

    overhead = GATES_PER_JOB * gate_seconds / job_seconds
    assert overhead < MAX_DISABLED_CHAOS_OVERHEAD, (
        f"disabled chaos gates cost {overhead:.2%} of a warm job "
        f"({gate_seconds * 1e9:.0f} ns/gate x {GATES_PER_JOB} gates vs "
        f"{job_seconds * 1e3:.2f} ms/job)")


#: Generous ceiling on telemetry-gate visits per job: the execute span,
#: every CAD stage span + lookup counter, store load/publish wrappers,
#: engine counters and the batch/scheduler bookkeeping.  The real count
#: on a warm (cache-served) job is far lower.
TELEMETRY_GATES_PER_JOB = 150

#: Acceptance: the uninstrumented (telemetry off) run stays within 2% of
#: the plain warm-job throughput recorded before the telemetry plane.
MAX_DISABLED_TELEMETRY_OVERHEAD = 0.02


def test_disabled_telemetry_overhead_is_negligible():
    """Telemetry-plane guard: with no telemetry installed, every metric
    and span site costs one module attribute load and an ``is`` check —
    the same discipline the fault plane proved out above.

    The same analytic bound is used for the same reason: scheduler noise
    between two identical warm sweeps exceeds 2% on a shared box, while
    gate cost x a generous per-job site ceiling against the best warm
    job resolves it with orders of magnitude to spare.  The measured
    numbers ride along in ``BENCH_service.json`` so the trajectory of
    the uninstrumented path stays on record.
    """
    from repro import obs

    assert obs.ACTIVE is None  # measuring the *disabled* plane
    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        # The exact production pattern at every instrumentation site.
        if obs.ACTIVE is not None:  # pragma: no cover
            obs.inc("warp_jobs_total", status="ok")
    gate_seconds = (time.perf_counter() - start) / iterations

    jobs = suite_sweep_jobs(benchmarks=["brev", "matmul", "idct"],
                            small=True)
    service = WarpService(workers=0)
    service.run(jobs)  # warm every cache first
    best_sweep = min(_timed_run(service, jobs)[1] for _ in range(5))
    job_seconds = best_sweep / len(jobs)

    overhead = TELEMETRY_GATES_PER_JOB * gate_seconds / job_seconds

    # Record the measurement next to the throughput numbers, keeping the
    # file's shape ({"latest": ..., "history": [...]}) and history.
    if BENCH_PATH.exists():
        try:
            payload = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            payload = {"latest": {}, "history": []}
        block = {
            "gate_ns": round(gate_seconds * 1e9, 1),
            "gates_per_job_ceiling": TELEMETRY_GATES_PER_JOB,
            "warm_job_ms": round(job_seconds * 1e3, 3),
            "overhead_fraction": round(overhead, 6),
            "threshold": MAX_DISABLED_TELEMETRY_OVERHEAD,
        }
        payload.setdefault("latest", {})["telemetry_overhead"] = block
        if payload.get("history"):
            payload["history"][-1]["telemetry_overhead"] = block
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead < MAX_DISABLED_TELEMETRY_OVERHEAD, (
        f"disabled telemetry gates cost {overhead:.2%} of a warm job "
        f"({gate_seconds * 1e9:.0f} ns/gate x {TELEMETRY_GATES_PER_JOB} "
        f"gates vs {job_seconds * 1e3:.2f} ms/job)")
