"""Figure 6 — speedups of the warp processor and the ARM hard cores.

Regenerates the per-benchmark speedup series of Figure 6 (warp processor
and ARM7/9/10/11 relative to the plain 85 MHz MicroBlaze) and checks the
paper-shape properties: ``brev`` is the best case, the suite-average warp
speedup is in the range the paper reports, and the warp processor
out-performs the ARM7/9/10 while the ARM11 stays ahead.

The timed portion is the warp-processing flow itself (profile → partition →
co-execute) on a representative benchmark; the assertions run against the
cached full-size evaluation.
"""

from __future__ import annotations

import pytest

from repro.apps import build_benchmark
from repro.compiler import compile_source
from repro.eval.figures import PLATFORM_ORDER
from repro.microblaze import PAPER_CONFIG
from repro.warp import WarpProcessor


def test_fig6_warp_flow_canrdr(benchmark, full_evaluation):
    """Time the full warp flow for one benchmark; assert Figure 6's shape."""
    bench = build_benchmark("canrdr", small=True)
    program = compile_source(bench.source, name="canrdr", config=PAPER_CONFIG).program

    def run_warp_flow():
        return WarpProcessor(config=PAPER_CONFIG).run(program.copy())

    result = benchmark.pedantic(run_warp_flow, rounds=3, iterations=1)
    assert result.checksums_match

    # ---- Figure 6 shape assertions on the full-size evaluation -------------
    suite = full_evaluation
    speedups = {item.benchmark.name: item.speedups() for item in suite.evaluations}

    # Every platform column exists for every benchmark (the figure's series).
    for name, row in speedups.items():
        assert set(PLATFORM_ORDER) <= set(row)

    warp = {name: row["MicroBlaze (Warp)"] for name, row in speedups.items()}
    # brev is the stand-out best case (16.9x in the paper).
    assert max(warp, key=warp.get) == "brev"
    assert warp["brev"] > 8.0
    # Average warp speedup lands in the neighbourhood of the paper's 5.8x.
    average = suite.average_warp_speedup()
    assert 3.0 <= average <= 10.0
    # Excluding brev the paper reports 3.6x.
    assert 2.0 <= suite.average_warp_speedup(exclude=("brev",)) <= 6.0
    # The warp processor beats ARM7, ARM9 and ARM10 on average, not the ARM11.
    arm_avgs = {core: sum(row[core] for row in speedups.values()) / len(speedups)
                for core in ("ARM7", "ARM9", "ARM10", "ARM11")}
    assert average > arm_avgs["ARM7"]
    assert average > arm_avgs["ARM9"]
    assert average > arm_avgs["ARM10"]
    assert arm_avgs["ARM11"] > arm_avgs["ARM10"] > arm_avgs["ARM9"] > arm_avgs["ARM7"]


def test_fig6_table_rendering(benchmark, full_evaluation):
    """Time rendering the Figure 6 table (the reporting path)."""
    table = benchmark(full_evaluation.figure6_table)
    assert "brev" in table and "Average:" in table
    for platform in PLATFORM_ORDER:
        assert platform.split(" ")[0] in table
