"""Ablation — what the WCLA's dedicated resources buy.

Section 3 argues that the DADG (regular-access address generation) and the
32-bit MAC are what let a *simple* configurable logic fabric compete.  This
benchmark times the synthesis stage and compares the initiation interval /
resource usage of MAC-heavy kernels (``matmul``, ``idct``) against
wire-dominated kernels (``brev``, ``g3fax``), and checks the single-memory-
port bottleneck the DADG model imposes.
"""

from __future__ import annotations

from repro.decompile import decompile_and_extract
from repro.microblaze import PAPER_CONFIG, run_program
from repro.profiler import OnChipProfiler
from repro.synthesis import synthesize_kernel


def _kernel(program):
    profiler = OnChipProfiler()
    run_program(program, PAPER_CONFIG, listeners=[profiler])
    return decompile_and_extract(program.text, profiler.most_critical_region())


def test_wcla_resource_binding(benchmark, compiled_programs):
    kernels = {name: _kernel(program)
               for name, program in compiled_programs.items()}

    def synthesize_all():
        return {name: synthesize_kernel(kernel) for name, kernel in kernels.items()}

    synthesis = benchmark.pedantic(synthesize_all, rounds=2, iterations=1)

    # The MAC serves the multiply-accumulate kernels and nothing else.
    assert synthesis["matmul"].mac_operations >= 1
    assert synthesis["idct"].mac_operations >= 1
    assert synthesis["brev"].mac_operations == 0
    assert synthesis["g3fax"].mac_operations == 0

    # brev's reversal network is wires (the paper's "requiring only wires").
    assert synthesis["brev"].wire_only_nodes > synthesis["matmul"].wire_only_nodes

    # The single memory port sets the initiation interval: two reads per
    # iteration for matmul/idct/canrdr, a single write for g3fax.
    assert synthesis["matmul"].initiation_interval >= 2
    assert synthesis["idct"].initiation_interval >= 2
    assert synthesis["g3fax"].initiation_interval == 1

    # Every kernel fits comfortably within the simple fabric's LUT budget.
    for name, result in synthesis.items():
        assert result.total_luts < 1000, name
        assert result.control_luts > 0, name


def test_memory_port_ablation(benchmark, compiled_programs):
    """Doubling the DADG's memory ports halves the II of load-bound kernels."""
    kernel = _kernel(compiled_programs["matmul"])

    def synthesize_both():
        one_port = synthesize_kernel(kernel, memory_ports=1)
        two_ports = synthesize_kernel(kernel, memory_ports=2)
        return one_port, two_ports

    one_port, two_ports = benchmark.pedantic(synthesize_both, rounds=2, iterations=1)
    assert two_ports.initiation_interval <= one_port.initiation_interval
    assert one_port.initiation_interval >= 2
