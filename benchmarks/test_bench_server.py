"""Networked warp service benchmarks: persistent store warm-up, gateway
throughput.

Two claims are measured and floored (ISSUE 4 acceptance):

* **warm disk store across processes** — the full-size threaded-engine
  suite sweep runs twice through the ``repro-warp suite`` CLI, each time
  in a *fresh subprocess* sharing one ``--store`` directory.  The second
  process starts with cold in-memory caches but a warm
  :class:`~repro.server.store.DiskArtifactStore`; its CAD stage lookups
  must reach a >= 90% hit rate, with the disk tier counted separately
  from memory hits (it *is* the disk tier doing the serving).
* **gateway throughput** — the full-size both-engine sweep (12 jobs)
  submitted to a WARPNET gateway backed by a 3-worker pool, once as
  single-job submissions over one connection (serial round trips, serial
  execution) and once as one 12-job batch (the pool's content-affinity
  shards run concurrently).  On a machine with >= 2 CPUs the batch must
  beat serial submission.

All numbers are appended to ``BENCH_server.json`` at the repository root
so future PRs have a recorded service trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.server import GatewayClient, WarpGateway, start_gateway_thread
from repro.service import suite_sweep_jobs
from repro.service.pool import STORE_ENV_VAR

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_server.json"

#: Acceptance floor: CAD stage hit rate of a fresh process on a warm store.
MIN_WARM_STORE_STAGE_HIT_RATE = 0.90


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX fallback
        return os.cpu_count() or 1


def _suite_cli(store: Path, out: Path) -> None:
    """One full-size threaded-engine sweep in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(STORE_ENV_VAR, None)  # the --store flag must do the wiring
    subprocess.run(
        [sys.executable, "-m", "repro.service.cli", "suite",
         "--engines", "threaded", "--store", str(store),
         "--out", str(out), "--quiet"],
        check=True, env=env, cwd=REPO_ROOT, timeout=600,
    )


def _stage_totals(report: dict) -> dict:
    hits = misses = disk = 0
    for metrics in report["stages"].values():
        hits += metrics["hits"]
        misses += metrics["misses"]
        disk += metrics["disk_hits"]
    lookups = hits + misses
    return {
        "stage_hits": hits,
        "stage_misses": misses,
        "stage_disk_hits": disk,
        "stage_hit_rate": hits / lookups if lookups else 0.0,
    }


def test_warm_disk_store_and_gateway_throughput(tmp_path):
    cpus = _cpu_count()

    # ------------------------------------------------- warm store, fresh process
    store = tmp_path / "artifact-store"
    cold_out = tmp_path / "cold.json"
    warm_out = tmp_path / "warm.json"

    cold_started = time.perf_counter()
    _suite_cli(store, cold_out)
    cold_seconds = time.perf_counter() - cold_started
    warm_started = time.perf_counter()
    _suite_cli(store, warm_out)
    warm_seconds = time.perf_counter() - warm_started

    cold = json.loads(cold_out.read_text())
    warm = json.loads(warm_out.read_text())
    assert cold["num_failed"] == 0 and warm["num_failed"] == 0

    cold_stages = _stage_totals(cold)
    warm_stages = _stage_totals(warm)
    # The first process wrote the store; it served nothing from disk.
    assert cold_stages["stage_disk_hits"] == 0
    # The second process's stage hits came from the disk tier (its memory
    # caches started cold), counted separately from memory hits.
    assert warm["cache"]["disk_hits"] > 0
    assert warm_stages["stage_disk_hits"] > 0
    assert warm_stages["stage_disk_hits"] <= warm_stages["stage_hits"]
    assert warm_stages["stage_hit_rate"] >= MIN_WARM_STORE_STAGE_HIT_RATE, \
        warm_stages

    # Results are identical across processes (content-addressed reuse is
    # an optimization, never a numbers change).
    for a, b in zip(cold["jobs"], warm["jobs"]):
        assert a["job_name"] == b["job_name"]
        assert a["speedup"] == b["speedup"], a["job_name"]
        assert a["normalized_warp_energy"] == b["normalized_warp_energy"]

    # ------------------------------------------------------ gateway throughput
    jobs = suite_sweep_jobs(engines=("threaded", "interp"))
    gateway_workers = 3

    # Serial submission: one connection, one job per request, to a pooled
    # gateway.  Each request executes alone — no batch to fan out.
    serial_gateway = WarpGateway(port=0, workers=gateway_workers,
                                 queue_limit=64)
    serial_thread = start_gateway_thread(serial_gateway)
    try:
        with GatewayClient(serial_gateway.address) as client:
            serial_started = time.perf_counter()
            serial_results = []
            for job in jobs:
                report = client.submit([job])
                serial_results.extend(report.results)
            serial_seconds = time.perf_counter() - serial_started
    finally:
        serial_gateway.request_stop()
        serial_thread.join(timeout=60)
    assert all(result.ok for result in serial_results)

    # Batch submission: the same jobs in one request; the gateway's
    # 2-worker pool runs its content-affinity shards concurrently.
    batch_gateway = WarpGateway(port=0, workers=gateway_workers,
                                queue_limit=64)
    batch_thread = start_gateway_thread(batch_gateway)
    try:
        with GatewayClient(batch_gateway.address) as client:
            batch_started = time.perf_counter()
            batch_report = client.submit(jobs)
            batch_seconds = time.perf_counter() - batch_started
    finally:
        batch_gateway.request_stop()
        batch_thread.join(timeout=60)
    assert batch_report.num_failed == 0

    # Same numbers either way (and either way matches the fresh-process
    # CLI runs above).
    by_name = {result.job_name: result for result in serial_results}
    for result in batch_report.results:
        assert result.speedup == by_name[result.job_name].speedup

    record = {
        "jobs": len(jobs),
        "cpus": cpus,
        "store": {
            "cold_process_seconds": round(cold_seconds, 4),
            "warm_process_seconds": round(warm_seconds, 4),
            "cold": cold_stages,
            "warm": warm_stages,
            "warm_disk_hits": warm["cache"]["disk_hits"],
        },
        "gateway": {
            "workers": gateway_workers,
            "serial_submission_seconds": round(serial_seconds, 4),
            "batch_submission_seconds": round(batch_seconds, 4),
            "batch_speedup": round(serial_seconds / batch_seconds, 2),
        },
        "thresholds": {
            "warm_store_stage_hit_rate": MIN_WARM_STORE_STAGE_HIT_RATE,
            "batch_faster_than_serial": "only asserted on >= 2 CPUs",
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    history = []
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
            history = previous.get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    history.append(record)
    BENCH_PATH.write_text(json.dumps({"latest": record,
                                      "history": history[-20:]},
                                     indent=2) + "\n")

    # ---------------------------------------------------------------- the floor
    if cpus >= 2:
        assert batch_seconds < serial_seconds, record
