"""Networked warp service benchmarks: persistent store warm-up, gateway
throughput, and the gateway mesh.

Three claims are measured and floored:

* **warm disk store across processes** — the full-size threaded-engine
  suite sweep runs twice through the ``repro-warp suite`` CLI, each time
  in a *fresh subprocess* sharing one ``--store`` directory.  The second
  process starts with cold in-memory caches but a warm
  :class:`~repro.server.store.DiskArtifactStore`; its CAD stage lookups
  must reach a >= 90% hit rate, with the disk tier counted separately
  from memory hits (it *is* the disk tier doing the serving).
* **gateway throughput** — the full-size both-engine sweep (12 jobs)
  submitted to a WARPNET gateway backed by a 3-worker pool, once as
  single-job submissions over one connection (serial round trips, serial
  execution) and once as one 12-job batch (the pool's content-affinity
  shards run concurrently).  Both gateways execute one warm-up job
  before the clock starts, so the measurement compares steady-state
  submission paths rather than who pays the pool fork.  On a machine
  with >= 2 CPUs the batch must be at least as fast as serial
  (``batch_speedup >= 1.0``).
* **gateway mesh** — the two-config small sweep driven by concurrent
  ring-routed clients against real ``repro-warp serve`` subprocesses:
  a 2-gateway mesh vs. one gateway (>= 1.5x throughput on >= 2 CPUs),
  then a third member joins and the re-run must stay >= 90% stage-hit
  served — the moved keys pulled from peers (``peer_hits``), not
  recomputed.

All numbers are appended to ``BENCH_server.json`` at the repository root
(the mesh block keeps its own history) so future PRs have a recorded
service trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.server import GatewayClient, HashRing, WarpGateway, \
    start_gateway_thread
from repro.service import WarpJob, suite_sweep_jobs
from repro.service.pool import STORE_ENV_VAR

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_server.json"

#: Acceptance floor: CAD stage hit rate of a fresh process on a warm store.
MIN_WARM_STORE_STAGE_HIT_RATE = 0.90

#: Acceptance floor (>= 2 CPUs): batch submission must not lose to serial.
MIN_BATCH_SPEEDUP = 1.0

#: Acceptance floor (>= 2 CPUs): 2-gateway mesh vs. single-gateway
#: throughput for concurrent ring-routed clients.
MIN_MESH_THROUGHPUT_RATIO = 1.5

#: Acceptance floor: stage hit rate of the sweep re-run after a third
#: member joins the mesh (moved keys are peer-fetched, not recomputed).
MIN_REBALANCE_STAGE_HIT_RATE = 0.90

#: Concurrent submitting clients in the mesh drill.
MESH_CLIENTS = 4


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX fallback
        return os.cpu_count() or 1


def _suite_cli(store: Path, out: Path) -> None:
    """One full-size threaded-engine sweep in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(STORE_ENV_VAR, None)  # the --store flag must do the wiring
    subprocess.run(
        [sys.executable, "-m", "repro.service.cli", "suite",
         "--engines", "threaded", "--store", str(store),
         "--out", str(out), "--quiet"],
        check=True, env=env, cwd=REPO_ROOT, timeout=600,
    )


def _stage_totals(report: dict) -> dict:
    hits = misses = disk = 0
    for metrics in report["stages"].values():
        hits += metrics["hits"]
        misses += metrics["misses"]
        disk += metrics["disk_hits"]
    lookups = hits + misses
    return {
        "stage_hits": hits,
        "stage_misses": misses,
        "stage_disk_hits": disk,
        "stage_hit_rate": hits / lookups if lookups else 0.0,
    }


def test_warm_disk_store_and_gateway_throughput(tmp_path):
    cpus = _cpu_count()

    # ------------------------------------------------- warm store, fresh process
    store = tmp_path / "artifact-store"
    cold_out = tmp_path / "cold.json"
    warm_out = tmp_path / "warm.json"

    cold_started = time.perf_counter()
    _suite_cli(store, cold_out)
    cold_seconds = time.perf_counter() - cold_started
    warm_started = time.perf_counter()
    _suite_cli(store, warm_out)
    warm_seconds = time.perf_counter() - warm_started

    cold = json.loads(cold_out.read_text())
    warm = json.loads(warm_out.read_text())
    assert cold["num_failed"] == 0 and warm["num_failed"] == 0

    cold_stages = _stage_totals(cold)
    warm_stages = _stage_totals(warm)
    # The first process wrote the store; it served nothing from disk.
    assert cold_stages["stage_disk_hits"] == 0
    # The second process's stage hits came from the disk tier (its memory
    # caches started cold), counted separately from memory hits.
    assert warm["cache"]["disk_hits"] > 0
    assert warm_stages["stage_disk_hits"] > 0
    assert warm_stages["stage_disk_hits"] <= warm_stages["stage_hits"]
    assert warm_stages["stage_hit_rate"] >= MIN_WARM_STORE_STAGE_HIT_RATE, \
        warm_stages

    # Results are identical across processes (content-addressed reuse is
    # an optimization, never a numbers change).
    for a, b in zip(cold["jobs"], warm["jobs"]):
        assert a["job_name"] == b["job_name"]
        assert a["speedup"] == b["speedup"], a["job_name"]
        assert a["normalized_warp_energy"] == b["normalized_warp_energy"]

    # ------------------------------------------------------ gateway throughput
    jobs = suite_sweep_jobs(engines=("threaded", "interp"))
    gateway_workers = 3
    # Both gateways execute one small job before their clock starts, so
    # pool fork + first-import cost lands outside the measured window and
    # the comparison is steady-state serial vs. batch submission.
    warmup = suite_sweep_jobs(engines=("threaded",), benchmarks=["brev"],
                              small=True)

    # Serial submission: one connection, one job per request, to a pooled
    # gateway.  Each request executes alone — no batch to fan out.
    serial_gateway = WarpGateway(port=0, workers=gateway_workers,
                                 queue_limit=64)
    serial_thread = start_gateway_thread(serial_gateway)
    try:
        with GatewayClient(serial_gateway.address) as client:
            assert client.submit(warmup).num_failed == 0
            serial_started = time.perf_counter()
            serial_results = []
            for job in jobs:
                report = client.submit([job])
                serial_results.extend(report.results)
            serial_seconds = time.perf_counter() - serial_started
    finally:
        serial_gateway.request_stop()
        serial_thread.join(timeout=60)
    assert all(result.ok for result in serial_results)

    # Batch submission: the same jobs in one request; the gateway's
    # 2-worker pool runs its content-affinity shards concurrently.
    batch_gateway = WarpGateway(port=0, workers=gateway_workers,
                                queue_limit=64)
    batch_thread = start_gateway_thread(batch_gateway)
    try:
        with GatewayClient(batch_gateway.address) as client:
            assert client.submit(warmup).num_failed == 0
            batch_started = time.perf_counter()
            batch_report = client.submit(jobs)
            batch_seconds = time.perf_counter() - batch_started
    finally:
        batch_gateway.request_stop()
        batch_thread.join(timeout=60)
    assert batch_report.num_failed == 0

    # Same numbers either way (and either way matches the fresh-process
    # CLI runs above).
    by_name = {result.job_name: result for result in serial_results}
    for result in batch_report.results:
        assert result.speedup == by_name[result.job_name].speedup

    record = {
        "jobs": len(jobs),
        "cpus": cpus,
        "store": {
            "cold_process_seconds": round(cold_seconds, 4),
            "warm_process_seconds": round(warm_seconds, 4),
            "cold": cold_stages,
            "warm": warm_stages,
            "warm_disk_hits": warm["cache"]["disk_hits"],
        },
        "gateway": {
            "workers": gateway_workers,
            "serial_submission_seconds": round(serial_seconds, 4),
            "batch_submission_seconds": round(batch_seconds, 4),
            "batch_speedup": round(serial_seconds / batch_seconds, 2),
        },
        "thresholds": {
            "warm_store_stage_hit_rate": MIN_WARM_STORE_STAGE_HIT_RATE,
            "batch_speedup": MIN_BATCH_SPEEDUP,
            "batch_speedup_note": "only asserted on >= 2 CPUs",
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    data = _load_bench()
    history = data.get("history", [])
    history.append(record)
    data["latest"] = record
    data["history"] = history[-20:]
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    # ---------------------------------------------------------------- the floor
    if cpus >= 2:
        assert record["gateway"]["batch_speedup"] >= MIN_BATCH_SPEEDUP, record


def _load_bench() -> dict:
    """The BENCH_server.json document, or {} — keeps sibling blocks (the
    gateway record and the mesh record update independently)."""
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
            if isinstance(data, dict):
                return data
        except json.JSONDecodeError:
            pass
    return {}


# ------------------------------------------------------------------ mesh bench
def _mesh_jobs():
    """Two configs x six benchmarks, small + threaded: enough distinct
    dedup keys to spread over a small ring, fast enough to run thrice."""
    from repro.microblaze import PAPER_CONFIG
    from repro.microblaze.config import MINIMAL_CONFIG

    return suite_sweep_jobs(
        configs=[("paper", PAPER_CONFIG), ("minimal", MINIMAL_CONFIG)],
        engines=("threaded",), small=True)


def _spawn_gateway(store: Path, peers=()):
    """A real ``repro-warp serve`` subprocess (serial service, its own
    disk store); returns ``(proc, "host:port")`` once it is listening."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop(STORE_ENV_VAR, None)
    cmd = [sys.executable, "-m", "repro.service.cli", "serve",
           "--port", "0", "--store", str(store)]
    for peer in peers:
        cmd.extend(["--peer", peer])
    proc = subprocess.Popen(cmd, env=env, cwd=REPO_ROOT,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([0-9.]+:[0-9]+)", line or "")
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        raise RuntimeError(f"gateway never announced itself: {line!r}")
    return proc, match.group(1)


def _stop_gateway(proc, address: str) -> None:
    try:
        with GatewayClient(address) as client:
            client.shutdown()
    except Exception:
        pass
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


def _drive_clients(addresses, jobs, clients=MESH_CLIENTS):
    """``clients`` concurrent threads submitting single-job ring-routed
    batches, each job to its consistent-hash owner.  Returns the reports
    and the wall-clock seconds for the whole fan-out."""
    ring = HashRing(list(addresses))
    reports = []
    errors = []
    lock = threading.Lock()

    def work(share):
        conns = {}
        try:
            for job in share:
                owner = ring.node_for(repr(job.dedup_key())) or addresses[0]
                client = conns.get(owner)
                if client is None:
                    client = GatewayClient(owner)
                    conns[owner] = client
                report = client.submit([job], route="ring")
                with lock:
                    reports.append(report)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            for client in conns.values():
                client.close()

    threads = [threading.Thread(target=work, args=(jobs[index::clients],))
               for index in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    if errors:
        raise errors[0]
    return reports, seconds


def _report_totals(reports) -> dict:
    hits = misses = disk = peer = 0
    for report in reports:
        for metrics in report.to_plain()["stages"].values():
            hits += metrics["hits"]
            misses += metrics["misses"]
            disk += metrics["disk_hits"]
            peer += metrics["peer_hits"]
    lookups = hits + misses
    return {
        "stage_hits": hits,
        "stage_misses": misses,
        "stage_disk_hits": disk,
        "stage_peer_hits": peer,
        "stage_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
    }


def _canonical_by_name(reports) -> dict:
    out = {}
    for report in reports:
        for result in report.results:
            out[result.job_name] = result.canonical()
    return out


def _assert_all_ok(reports) -> None:
    failures = [(result.job_name, result.error)
                for report in reports
                for result in report.results if not result.ok]
    assert not failures, failures


def test_mesh_throughput_and_rebalance(tmp_path):
    cpus = _cpu_count()
    jobs = _mesh_jobs()

    # ------------------------------------------------- single-gateway baseline
    single_proc, single_addr = _spawn_gateway(tmp_path / "single-store")
    try:
        single_reports, single_seconds = _drive_clients([single_addr], jobs)
    finally:
        _stop_gateway(single_proc, single_addr)
    _assert_all_ok(single_reports)
    assert len(single_reports) == len(jobs)

    # --------------------------------------------------------- 2-gateway mesh
    g1_proc, g1_addr = _spawn_gateway(tmp_path / "mesh-store-1")
    g2_proc, g2_addr = _spawn_gateway(tmp_path / "mesh-store-2",
                                      peers=[g1_addr])
    g3 = None
    try:
        mesh_reports, mesh_seconds = _drive_clients([g1_addr, g2_addr], jobs)
        _assert_all_ok(mesh_reports)
        # The mesh computes the same numbers as the single gateway.
        assert _canonical_by_name(mesh_reports) == \
            _canonical_by_name(single_reports)

        # -------------------------------------------- rebalance: a third joins
        g3 = _spawn_gateway(tmp_path / "mesh-store-3",
                            peers=[g1_addr, g2_addr])
        g3_proc, g3_addr = g3
        ring3 = HashRing([g1_addr, g2_addr, g3_addr])
        moved = [job for job in jobs
                 if ring3.node_for(repr(job.dedup_key())) == g3_addr]
        rerun_reports, rerun_seconds = _drive_clients(
            [g1_addr, g2_addr, g3_addr], jobs)
        _assert_all_ok(rerun_reports)
        assert _canonical_by_name(rerun_reports) == \
            _canonical_by_name(single_reports)
        rerun_totals = _report_totals(rerun_reports)

        with GatewayClient(g3_addr) as client:
            g3_view = client.mesh_peers()
        assert sorted(g3_view["members"]) == sorted(
            [g1_addr, g2_addr, g3_addr])
    finally:
        if g3 is not None:
            _stop_gateway(g3[0], g3[1])
        _stop_gateway(g2_proc, g2_addr)
        _stop_gateway(g1_proc, g1_addr)

    throughput_ratio = round(single_seconds / mesh_seconds, 2) \
        if mesh_seconds else 0.0
    record = {
        "jobs": len(jobs),
        "clients": MESH_CLIENTS,
        "cpus": cpus,
        "single_gateway_seconds": round(single_seconds, 4),
        "mesh_2gw_seconds": round(mesh_seconds, 4),
        "throughput_ratio": throughput_ratio,
        "rebalance": {
            "rerun_seconds": round(rerun_seconds, 4),
            "moved_jobs": len(moved),
            "peer_fetch_hits": g3_view["peer_fetch_hits"],
            **rerun_totals,
        },
        "thresholds": {
            "mesh_throughput_ratio": MIN_MESH_THROUGHPUT_RATIO,
            "rebalance_stage_hit_rate": MIN_REBALANCE_STAGE_HIT_RATE,
            "ratio_note": "only asserted on >= 2 CPUs",
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }

    data = _load_bench()
    mesh_block = data.get("mesh", {})
    mesh_history = mesh_block.get("history", [])
    mesh_history.append(record)
    data["mesh"] = {"latest": record, "history": mesh_history[-20:]}
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    # --------------------------------------------------------------- the floors
    # The rebalance re-run is served from warm members plus peer fetches
    # onto the new one — not recomputed (deterministic: asserted always).
    assert rerun_totals["stage_hit_rate"] >= MIN_REBALANCE_STAGE_HIT_RATE, \
        record
    if moved:
        assert rerun_totals["stage_peer_hits"] > 0, record
        assert g3_view["peer_fetch_hits"] > 0, record
    if cpus >= 2:
        assert throughput_ratio >= MIN_MESH_THROUGHPUT_RATIO, record
