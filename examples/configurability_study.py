#!/usr/bin/env python3
"""Section 2 configurability study: what the optional hardware units buy.

Compiles and runs ``brev`` and ``matmul`` on MicroBlaze configurations with
and without the barrel shifter / hardware multiplier, showing how the
compiler substitutes successive adds and software multiply routines and how
much slower the applications get (the paper reports 2.1x for brev and 1.3x
for matmul).  Also prints an XPower-style component power report for one
configuration.

Run with:  python examples/configurability_study.py
"""

from repro.apps import build_benchmark
from repro.compiler import compile_source
from repro.eval import run_configurability_study
from repro.microblaze import MINIMAL_CONFIG, PAPER_CONFIG, run_program
from repro.power import estimate_system_power


def show_generated_code_difference() -> None:
    bench = build_benchmark("brev", count=8)
    full = compile_source(bench.source, name="brev", config=PAPER_CONFIG)
    reduced = compile_source(bench.source, name="brev", config=MINIMAL_CONFIG)
    print("--- compiler adaptation ---")
    print(f"with barrel shifter + multiplier : {full.program.num_instructions} "
          f"instructions, runtime routines: {sorted(full.runtime_routines) or 'none'}")
    print(f"without them                     : {reduced.program.num_instructions} "
          f"instructions, runtime routines: {sorted(reduced.runtime_routines) or 'none'}")
    barrel_count = full.assembly.count("bslli") + full.assembly.count("bsrai")
    add_chain = reduced.assembly.count("add  ") + reduced.assembly.count("sra ")
    print(f"barrel-shift instructions in the full build: {barrel_count}")
    print("(the reduced build replaces each of them with chains of adds and "
          "single-bit shifts, exactly as Section 2 describes)")
    print()


def main() -> None:
    print("=== Section 2: MicroBlaze configurability study ===\n")
    show_generated_code_difference()

    study = run_configurability_study()
    print("--- measured slowdowns ---")
    print(study.table())
    print()

    brev = study.entry("brev")
    matmul = study.entry("matmul")
    print(f"brev   without barrel shifter + multiplier: {brev.slowdown:.2f}x slower "
          f"(paper: {brev.paper_slowdown:.1f}x)")
    print(f"matmul without multiplier                 : {matmul.slowdown:.2f}x slower "
          f"(paper: {matmul.paper_slowdown:.1f}x)")
    print()

    print("--- XPower-style component power report (brev, full configuration) ---")
    bench = build_benchmark("brev")
    program = compile_source(bench.source, name="brev", config=PAPER_CONFIG).program
    result = run_program(program, PAPER_CONFIG)
    print(estimate_system_power(result).render())


if __name__ == "__main__":
    main()
