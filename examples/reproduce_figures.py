#!/usr/bin/env python3
"""Reproduce Figures 6 and 7 and the Section 4 aggregate claims.

Runs the six Powerstone/EEMBC-style benchmarks (brev, g3fax, canrdr,
bitmnp, idct, matmul) through the full flow — MicroBlaze software baseline,
warp processing, ARM7/9/10/11 comparison models, Figure-5 energy equation —
and prints the speedup table (Figure 6), the normalized energy table
(Figure 7) and the headline claims next to the paper's numbers.

Run with:  python examples/reproduce_figures.py          (full size, ~1-2 min)
           python examples/reproduce_figures.py --small  (reduced inputs)
"""

import argparse
import time

from repro.eval import run_evaluation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="use reduced benchmark sizes (faster, same shape)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="subset of benchmarks to run")
    args = parser.parse_args()

    started = time.time()
    suite = run_evaluation(names=args.benchmarks, small=args.small)
    elapsed = time.time() - started

    print("=== Figure 6: speedup relative to the MicroBlaze alone ===")
    print(suite.figure6_table())
    print()
    print("=== Figure 7: energy normalized to the MicroBlaze alone ===")
    print(suite.figure7_table())
    print()
    print("=== Section 4 aggregate claims (this reproduction vs. the paper) ===")
    print(suite.claims_summary())
    print()
    print(f"all warp checksums match the software runs: {suite.all_checksums_match}")
    print(f"evaluation wall-clock time: {elapsed:.1f} s")

    print()
    print("=== per-benchmark warp processing detail ===")
    for item in suite.evaluations:
        print(item.warp.summary())
        print(f"  {item.warp.partitioning.implementation.summary()}")
        print()


if __name__ == "__main__":
    main()
