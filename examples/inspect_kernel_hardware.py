#!/usr/bin/env python3
"""Look inside the on-chip CAD flow for one benchmark kernel.

Shows each stage the dynamic partitioning module runs for ``matmul``'s
inner-product loop: the profiler's critical-region choice, the disassembled
loop, the decompiled dataflow view (induction variable, affine memory
accesses, operation counts), the synthesis binding (MAC, LUTs, wires,
control FSM after logic minimisation), placement/routing statistics, the
achievable WCLA clock, and the binary patch that redirects the loop to the
hardware.

Run with:  python examples/inspect_kernel_hardware.py [benchmark]
"""

import sys

from repro.apps import benchmark_names, build_benchmark
from repro.compiler import compile_source
from repro.decompile import decompile_and_extract
from repro.fabric import DEFAULT_WCLA, implement_kernel, place_kernel, route_kernel
from repro.isa import decode, format_instruction
from repro.microblaze import PAPER_CONFIG, run_program
from repro.partition import DynamicPartitioningModule
from repro.profiler import OnChipProfiler
from repro.synthesis import synthesize_kernel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "matmul"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")

    bench = build_benchmark(name, small=True)
    program = compile_source(bench.source, name=name, config=PAPER_CONFIG).program

    print(f"=== {name}: {bench.description} ===")
    print(f"critical kernel: {bench.kernel_description}\n")

    # Phase 1: profile.
    profiler = OnChipProfiler()
    run_program(program, PAPER_CONFIG, listeners=[profiler])
    region = profiler.most_critical_region()
    print("--- profiler ---")
    print(profiler.summary())
    print()

    # The loop as the DPM sees it: raw machine words in the instruction BRAM.
    print("--- disassembled critical region ---")
    for address in range(region.start_address, region.end_address + 4, 4):
        instr = decode(program.word_at(address), address=address)
        print("   " + format_instruction(instr))
    print()

    # Phase 2: decompile and synthesise.
    kernel = decompile_and_extract(program.text, region)
    print("--- decompiled kernel ---")
    print(kernel.summary())
    print()
    for register, expr in sorted(kernel.body.register_updates.items()):
        print(f"   r{register}' = {expr}")
    for store in kernel.body.stores:
        print(f"   {store}")
    print(f"   continue while {kernel.body.continue_condition}")
    print()

    synthesis = synthesize_kernel(kernel)
    print("--- synthesis / technology mapping ---")
    print(synthesis.summary())
    control = synthesis.control
    print(f"control FSM: {control.num_states} states, {control.luts} LUTs after "
          f"logic minimisation ({control.original_literals} -> "
          f"{control.minimized_literals} literals)")
    print()

    # Phase 3: place, route, estimate the clock.
    placement = place_kernel(synthesis, DEFAULT_WCLA)
    routing = route_kernel(placement, DEFAULT_WCLA)
    implementation = implement_kernel(kernel, synthesis, placement, routing, DEFAULT_WCLA)
    print("--- placement / routing / timing ---")
    print(f"placed {len(placement.components)} components, total wirelength "
          f"{placement.total_wirelength}, {placement.area.clbs_used} CLBs "
          f"({100 * placement.area.utilization:.1f}% of the fabric)")
    print(f"routing: {routing.iterations} iteration(s), max channel occupancy "
          f"{routing.max_channel_occupancy}/{routing.channel_capacity}")
    print(f"clock: {implementation.clock_mhz:.0f} MHz "
          f"(limited by {implementation.timing.limiting_factor()}), "
          f"II = {implementation.initiation_interval}, configuration bitstream "
          f"{implementation.bitstream.total_bits} bits")
    print()

    # Phase 4: patch the binary and show the invocation stub.
    patched = program.copy()
    outcome = DynamicPartitioningModule().partition(patched, region)
    print("--- binary update ---")
    print(f"loop header {outcome.patch.header_address:#06x} now branches to the "
          f"invocation stub at {outcome.patch.stub_address:#06x}:")
    for index, word in enumerate(outcome.patch.stub_words):
        instr = decode(word, address=outcome.patch.stub_address + 4 * index)
        print("   " + format_instruction(instr))
    print()
    print(f"modelled on-chip tool time: {outcome.dpm_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
