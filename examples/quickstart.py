#!/usr/bin/env python3
"""Quickstart: run one application on a MicroBlaze and on a warp processor.

This example walks the whole public API once:

1. write a small kernel-language program (a FIR-like dot product),
2. compile it for the paper's MicroBlaze configuration (85 MHz, barrel
   shifter + multiplier),
3. run it on the plain MicroBlaze system simulator,
4. run it on the MicroBlaze-based warp processor, which profiles it,
   partitions its critical loop onto the WCLA, patches the binary and
   co-executes it,
5. print the performance and energy comparison.

Run with:  python examples/quickstart.py
"""

from repro.compiler import compile_source
from repro.microblaze import PAPER_CONFIG, run_program
from repro.power import microblaze_energy, warp_energy
from repro.warp import WarpProcessor

SOURCE = """
int samples[64] = {
     3,  1,  4,  1,  5,  9,  2,  6,  5,  3,  5,  8,  9,  7,  9,  3,
     2,  3,  8,  4,  6,  2,  6,  4,  3,  3,  8,  3,  2,  7,  9,  5,
     0,  2,  8,  8,  4,  1,  9,  7,  1,  6,  9,  3,  9,  9,  3,  7,
     5,  1,  0,  5,  8,  2,  0,  9,  7,  4,  9,  4,  4,  5,  9,  2
};
int taps[8] = {1, 2, 4, 8, 8, 4, 2, 1};
int output[64];

int main() {
    int i;
    int k;
    int acc;
    int checksum;
    checksum = 0;
    for (i = 0; i < 56; i = i + 1) {
        acc = 0;
        for (k = 0; k < 8; k = k + 1) {
            acc = acc + samples[i + k] * taps[k];
        }
        output[i] = acc >> 2;
        checksum = checksum + output[i];
    }
    return checksum;
}
"""


def main() -> None:
    print("=== Quickstart: warp processing a small FIR filter ===\n")

    # 1-2. Compile for the paper's MicroBlaze configuration.
    compiled = compile_source(SOURCE, name="fir", config=PAPER_CONFIG)
    print(f"compiled 'fir': {compiled.program.num_instructions} instructions, "
          f"{len(compiled.program.data)} bytes of data")
    print(f"runtime routines linked: {sorted(compiled.runtime_routines) or 'none'}\n")

    # 3. Software-only execution on the MicroBlaze system (Figure 1).
    software = run_program(compiled.program, PAPER_CONFIG)
    print("--- plain MicroBlaze (85 MHz on Spartan3) ---")
    print(software.summary())
    print(f"checksum = {software.return_value}\n")

    # 4. Warp processing (Figure 2): profile, partition, patch, co-execute.
    warp = WarpProcessor(config=PAPER_CONFIG).run(compiled.program)
    print("--- warp processor ---")
    print(warp.partitioning.summary())
    print()
    print(warp.summary())

    # 5. Energy comparison using the Figure-5 equation.
    baseline_energy = microblaze_energy(warp.software_seconds, PAPER_CONFIG.clock_mhz)
    warp_e = warp_energy(
        mb_active_seconds=warp.microblaze_seconds,
        hw_seconds=warp.hw_seconds,
        clock_mhz=PAPER_CONFIG.clock_mhz,
        wcla_luts=warp.partitioning.synthesis.total_luts,
        uses_mac=warp.partitioning.synthesis.mac_operations > 0,
    )
    print()
    print("--- energy (Figure 5 equation) ---")
    print(f"MicroBlaze alone : {baseline_energy.total_mj:.3f} mJ")
    print(f"warp processor   : {warp_e.total_mj:.3f} mJ "
          f"({100 * (1 - warp_e.normalized_to(baseline_energy)):.0f}% reduction)")


if __name__ == "__main__":
    main()
